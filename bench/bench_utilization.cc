/**
 * @file
 * Figure 1's motivation, measured: per-functional-unit utilization
 * U = N*L/T of the ray tracer as thread slots are added. Shows the
 * mechanism behind Table 2 — utilization of the busiest unit climbs
 * toward saturation, and the load/store unit reaches ~99% at eight
 * slots with one unit (section 3.2).
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

std::string
pointId(int slots, int lsu)
{
    return "ray/s" + std::to_string(slots) + "/ls" +
           std::to_string(lsu);
}

} // namespace

int
main()
{
    // All eight configurations run concurrently via smtsim::lab;
    // the tables below read back from the ResultSet.
    const lab::WorkloadSpec ray = standardRayTraceSpec();
    std::vector<lab::Job> jobs;
    for (int lsu : {1, 2}) {
        for (int slots : {1, 2, 4, 8}) {
            CoreConfig cfg;
            cfg.num_slots = slots;
            cfg.fus.load_store = lsu;
            jobs.push_back(
                lab::coreJob(pointId(slots, lsu), ray, cfg));
        }
    }
    const lab::ResultSet rs =
        lab::runJobs(jobs, benchLabOptions());

    for (int lsu : {1, 2}) {
        TextTable table(
            "Per-unit utilization [%], ray tracing, " +
            std::to_string(lsu) + " load/store unit(s)");
        table.addRow({"slots", "int_alu", "shifter", "int_mul",
                      "fp_add", "fp_mul", "fp_div", "ls0", "ls1"});
        for (int slots : {1, 2, 4, 8}) {
            const RunStats s = mustStats(rs, pointId(slots, lsu));
            table.addRow(
                {std::to_string(slots),
                 fmt(s.unitUtilization(FuClass::IntAlu, 0), 1),
                 fmt(s.unitUtilization(FuClass::Shifter, 0), 1),
                 fmt(s.unitUtilization(FuClass::IntMul, 0), 1),
                 fmt(s.unitUtilization(FuClass::FpAdd, 0), 1),
                 fmt(s.unitUtilization(FuClass::FpMul, 0), 1),
                 fmt(s.unitUtilization(FuClass::FpDiv, 0), 1),
                 fmt(s.unitUtilization(FuClass::LoadStore, 0), 1),
                 lsu > 1 ? fmt(s.unitUtilization(
                               FuClass::LoadStore, 1), 1)
                         : std::string("-")});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::printf("paper: with one load/store unit and 8 slots its "
                "utilization reaches 99%%,\nexplaining the "
                "saturation of Table 2's speed-up at 3.22\n");
    return 0;
}
