/**
 * @file
 * Load test for smtsim-serve: drives an in-process daemon over a
 * real unix socket with thousands of client submissions and writes
 * BENCH_serve.json (scripts/bench_serve.sh wraps this).
 *
 * Three phases:
 *  - herd: N identical single-job specs from many concurrent client
 *    connections. The single-flight table must collapse them onto
 *    exactly ONE simulation (asserted via the daemon's execution
 *    counter); reported are throughput, p50/p99 submission latency
 *    and the dedup/cache split.
 *  - sweep: distinct specs (no dedup possible) saturating the
 *    worker pool — the honest jobs-per-second number.
 *  - crash: a sweep of slow jobs while worker processes are
 *    SIGKILLed under it; every job must still come back ok through
 *    retry + restart.
 *
 * Env knobs (CI uses smaller values than the defaults):
 *   SMTSIM_SERVE_HERD     herd submissions        (default 1200)
 *   SMTSIM_SERVE_CLIENTS  concurrent connections  (default 32)
 *   SMTSIM_SERVE_SWEEP    distinct sweep jobs     (default 96)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "base/sockio.hh"
#include "serve/serve.hh"

using namespace smtsim;
using namespace smtsim::serve;
namespace fs = std::filesystem;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

long
envLong(const char *name, long fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::atol(v) : fallback;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p / 100.0 *
                        static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi =
        std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Json
latencyJson(const std::vector<double> &samples)
{
    Json j = Json::object();
    j.set("samples", Json(samples.size()));
    j.set("p50_ms", Json(percentile(samples, 50) * 1e3));
    j.set("p99_ms", Json(percentile(samples, 99) * 1e3));
    j.set("max_ms",
          Json(samples.empty()
                   ? 0.0
                   : *std::max_element(samples.begin(),
                                       samples.end()) *
                         1e3));
    return j;
}

struct Scratch
{
    fs::path dir;

    Scratch()
        : dir(fs::temp_directory_path() /
              ("smtsim-bench-serve-" + std::to_string(::getpid())))
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~Scratch()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }
    std::string str(const char *leaf) const
    {
        return (dir / leaf).string();
    }
};

/** Distinct single-job specs: max_cycles moves the cache key. */
lab::ExperimentSpec
distinctSpec(int i)
{
    lab::ExperimentSpec spec;
    spec.name = "sweep";
    spec.workloads = {lab::WorkloadSpec::matmul(8)};
    spec.slots = {2};
    spec.core_template.max_cycles = 10'000'000 + i;
    return spec;
}

[[noreturn]] void
die(const std::string &what)
{
    std::fprintf(stderr, "bench_serve: FAILED: %s\n", what.c_str());
    std::exit(1);
}

/**
 * Run @p total submissions of per-client specs across @p nclients
 * connections; returns per-submission wall latencies.
 * @p spec_for maps a global submission index to its spec.
 */
std::vector<double>
drive(const std::string &socket_path, int nclients, int total,
      const std::function<lab::ExperimentSpec(int)> &spec_for,
      std::atomic<long> *failures)
{
    std::vector<std::vector<double>> lats(
        static_cast<std::size_t>(nclients));
    std::vector<std::thread> threads;
    std::atomic<int> next{0};

    for (int c = 0; c < nclients; ++c) {
        threads.emplace_back([&, c] {
            Client client;
            std::string err;
            if (!client.connect(socket_path, &err)) {
                failures->fetch_add(1);
                return;
            }
            for (int i = next.fetch_add(1); i < total;
                 i = next.fetch_add(1)) {
                const auto t0 = Clock::now();
                const SubmitOutcome out = client.submitAndWait(
                    "b" + std::to_string(i), spec_for(i), 120000);
                lats[static_cast<std::size_t>(c)].push_back(
                    seconds(t0, Clock::now()));
                if (!out.done() || out.failures != 0)
                    failures->fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<double> all;
    for (const auto &v : lats)
        all.insert(all.end(), v.begin(), v.end());
    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    // The pool re-executes this binary as its worker.
    if (argc == 2 && std::string(argv[1]) == "--worker")
        return workerMain();

    const int herd_n =
        static_cast<int>(envLong("SMTSIM_SERVE_HERD", 1200));
    const int clients =
        static_cast<int>(envLong("SMTSIM_SERVE_CLIENTS", 32));
    const int sweep_n =
        static_cast<int>(envLong("SMTSIM_SERVE_SWEEP", 96));
    const char *out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

    raiseFdLimit();
    Scratch scratch;
    Json report = Json::object();
    report.set("herd_submissions", Json(herd_n));
    report.set("clients", Json(clients));
    report.set("sweep_jobs", Json(sweep_n));

    // ---- phase 1: thundering herd -------------------------------
    {
        ServeOptions opts;
        opts.socket_path = scratch.str("herd.sock");
        opts.num_workers = 4;
        opts.cache_dir = scratch.str("herd-cache");
        Server server(std::move(opts));
        std::string err;
        if (!server.start(&err))
            die("herd server: " + err);

        // One identical, deliberately slow spec: most of the herd
        // arrives while the key is in flight.
        lab::ExperimentSpec spec;
        spec.name = "herd";
        spec.workloads = {lab::WorkloadSpec::rayTrace(64, 64)};
        spec.slots = {4};

        std::atomic<long> failures{0};
        const auto t0 = Clock::now();
        const std::vector<double> lat =
            drive(scratch.str("herd.sock"), clients, herd_n,
                  [&](int) { return spec; }, &failures);
        const double wall = seconds(t0, Clock::now());

        const ServerStats s = server.stats();
        server.stop();
        if (failures.load() != 0)
            die(std::to_string(failures.load()) +
                " herd submissions failed");
        // The acceptance criterion: the whole herd costs ONE
        // simulation.
        if (s.executed != 1)
            die("herd executed " + std::to_string(s.executed) +
                " times, expected exactly 1");

        Json phase = Json::object();
        phase.set("submissions", Json(herd_n));
        phase.set("executed", Json(s.executed));
        phase.set("coalesced", Json(s.coalesced));
        phase.set("cache_hits", Json(s.cache_hits));
        phase.set("dedup_rate",
                  Json(static_cast<double>(s.coalesced +
                                           s.cache_hits) /
                       static_cast<double>(herd_n)));
        phase.set("wall_seconds", Json(wall));
        phase.set("submissions_per_second",
                  Json(static_cast<double>(herd_n) / wall));
        phase.set("latency", latencyJson(lat));
        report.set("herd", phase);
        std::printf(
            "herd:  %d identical submissions -> %llu simulation, "
            "%.0f subs/s, p99 %.1f ms\n",
            herd_n,
            static_cast<unsigned long long>(s.executed),
            static_cast<double>(herd_n) / wall,
            percentile(lat, 99) * 1e3);
    }

    // ---- phase 2: distinct-spec throughput ----------------------
    {
        ServeOptions opts;
        opts.socket_path = scratch.str("sweep.sock");
        opts.cache_dir = scratch.str("sweep-cache");
        Server server(std::move(opts));
        std::string err;
        if (!server.start(&err))
            die("sweep server: " + err);

        std::atomic<long> failures{0};
        const auto t0 = Clock::now();
        const std::vector<double> lat =
            drive(scratch.str("sweep.sock"), clients, sweep_n,
                  distinctSpec, &failures);
        const double wall = seconds(t0, Clock::now());

        const ServerStats s = server.stats();
        server.stop();
        if (failures.load() != 0)
            die(std::to_string(failures.load()) +
                " sweep submissions failed");
        if (s.executed != static_cast<std::uint64_t>(sweep_n))
            die("sweep executed " + std::to_string(s.executed) +
                ", expected " + std::to_string(sweep_n));

        Json phase = Json::object();
        phase.set("jobs", Json(sweep_n));
        phase.set("wall_seconds", Json(wall));
        phase.set("jobs_per_second",
                  Json(static_cast<double>(sweep_n) / wall));
        phase.set("latency", latencyJson(lat));
        report.set("sweep", phase);
        std::printf("sweep: %d distinct jobs, %.0f jobs/s, "
                    "p99 %.1f ms\n",
                    sweep_n,
                    static_cast<double>(sweep_n) / wall,
                    percentile(lat, 99) * 1e3);
    }

    // ---- phase 3: worker crash injection ------------------------
    {
        ServeOptions opts;
        opts.socket_path = scratch.str("crash.sock");
        opts.num_workers = 2;
        opts.cache_dir = scratch.str("crash-cache");
        opts.max_retries = 4;
        Server server(std::move(opts));
        std::string err;
        if (!server.start(&err))
            die("crash server: " + err);

        // Slow jobs so the killer reliably lands mid-execution.
        lab::ExperimentSpec spec;
        spec.name = "crash";
        spec.workloads = {lab::WorkloadSpec::rayTrace(96, 96)};
        spec.slots = {1, 2, 4};

        std::atomic<bool> stop_killer{false};
        std::atomic<long> kills{0};
        std::thread killer([&] {
            // Inject a bounded burst of worker kills: enough that
            // several land mid-job, but finite so retries can
            // eventually outrun the violence (the retry budget is
            // per job, and an unbounded killer firing faster than
            // a job completes would legitimately exhaust it).
            for (int k = 0; k < 4 && !stop_killer.load(); ++k) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(300));
                const std::vector<int> pids = server.workerPids();
                if (!pids.empty() && !stop_killer.load()) {
                    ::kill(pids[0], SIGKILL);
                    kills.fetch_add(1);
                }
            }
        });

        Client client;
        if (!client.connect(scratch.str("crash.sock"), &err))
            die("crash client: " + err);
        const auto t0 = Clock::now();
        const SubmitOutcome out =
            client.submitAndWait("crash", spec, 120000);
        const double wall = seconds(t0, Clock::now());
        stop_killer.store(true);
        killer.join();

        const ServerStats s = server.stats();
        server.stop();
        if (!out.done())
            die("crash sweep ended " + out.status + ": " +
                out.error);
        if (out.failures != 0)
            die("crash sweep had " +
                std::to_string(out.failures) + " failed jobs");

        Json phase = Json::object();
        phase.set("jobs", Json(out.jobs));
        phase.set("workers_killed", Json(kills.load()));
        phase.set("retries", Json(s.retries));
        phase.set("worker_restarts", Json(s.worker_restarts));
        phase.set("wall_seconds", Json(wall));
        phase.set("all_ok", Json(true));
        report.set("crash", phase);
        std::printf("crash: %zu jobs ok through %ld worker kills "
                    "(%llu restarts, %llu retries)\n",
                    out.jobs, kills.load(),
                    static_cast<unsigned long long>(
                        s.worker_restarts),
                    static_cast<unsigned long long>(s.retries));
    }

    std::ofstream f(out_path);
    f << report.dump(2) << "\n";
    if (!f)
        die(std::string("cannot write ") + out_path);
    std::printf("wrote %s\n", out_path);
    return 0;
}
