/**
 * @file
 * The paper's concluding remarks: "One weak point of this paper is
 * the poor variety of tested programs. We should confirm the
 * effectiveness of our architecture by using many other application
 * programs." — this bench does exactly that: the Table 2
 * experiment (speed-up over the sequential base RISC) across five
 * applications with very different characters.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    struct App
    {
        const char *note;
        Workload workload;
    };

    RayTraceParams rp;
    rp.width = 16;
    rp.height = 16;
    MatmulParams mp;
    mp.n = 16;
    BsearchParams bp;
    bp.table_size = 512;
    bp.queries_per_thread = 64;
    RadiosityParams dp;
    dp.num_patches = 32;
    Lk1Params lp;
    lp.n = 256;
    lp.parallel = true;
    StencilParams sp;
    sp.width = 24;
    sp.height = 16;
    sp.sweeps = 3;

    App apps[] = {
        {"FP + branches + memory", makeRayTrace(rp)},
        {"FP, regular, ILP-rich", makeMatmul(mp)},
        {"integer, branch-bound", makeBsearch(bp)},
        {"FP + data-dependent branches", makeRadiosity(dp)},
        {"vectorizable FP loop", makeLivermore1(lp)},
        {"FP grid + ring barriers", makeStencil(sp)},
    };

    TextTable table("Speed-up over the sequential base RISC, by "
                    "application (2 load/store units)");
    table.addRow({"application", "character", "S=2", "S=4", "S=8",
                  "busiest util @8"});

    for (App &app : apps) {
        const RunStats base =
            mustRun(runBaseline(app.workload),
                    app.workload.name + " baseline");
        std::vector<std::string> row = {app.workload.name,
                                        app.note};
        double util8 = 0;
        for (int s : {2, 4, 8}) {
            CoreConfig cfg;
            cfg.num_slots = s;
            cfg.fus.load_store = 2;
            if (app.workload.name == "livermore1.par")
                cfg.rotation_mode = RotationMode::Explicit;
            const RunStats stats =
                mustRun(runCore(app.workload, cfg),
                        app.workload.name);
            row.push_back(fmt(speedup(base, stats)));
            if (s == 8)
                util8 = stats.busiestUnitUtilization();
        }
        row.push_back(fmt(util8, 1) + "%");
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nparallel multithreading helps every class of "
                "code; the limit is always\nwhichever unit "
                "saturates first (the rightmost column).\n");
    return 0;
}
