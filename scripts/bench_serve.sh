#!/bin/sh
# Load-test the simulation service and emit BENCH_serve.json:
# thundering-herd dedup (N identical submissions -> 1 simulation,
# p50/p99 latency), distinct-spec throughput, and recovery under
# injected worker crashes. The bench fails hard (exit 1) if the
# herd executes more than once or any job is lost.
#
# The build must be a Release build, for the same reason as
# scripts/bench_simspeed.sh: latency/throughput numbers from
# debug-ish builds are not comparable and must never land in
# BENCH_serve.json.
#
# Usage: scripts/bench_serve.sh [build-dir] [out.json]
#   SMTSIM_SERVE_HERD     herd submissions       (default 1200)
#   SMTSIM_SERVE_CLIENTS  concurrent connections (default 32)
#   SMTSIM_SERVE_SWEEP    distinct sweep jobs    (default 96)
set -eu

build=${1:-build}
out=${2:-BENCH_serve.json}

if [ ! -x "$build/bench/bench_serve" ]; then
    echo "bench_serve not built in $build (cmake --build $build)" >&2
    exit 1
fi

# Refuse non-Release builds up front: the benchmark binary cannot
# tell how the library it links was compiled, so read the build
# type straight out of the CMake cache.
if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "bench guard: $build/CMakeCache.txt not found (not a CMake build dir?)" >&2
    exit 1
fi
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
    echo "bench guard: $build is a '${build_type:-<unset>}' build;" \
         "service latency numbers are only meaningful from a" \
         "Release build:" >&2
    echo "    cmake -B build-release -DCMAKE_BUILD_TYPE=Release &&" \
         "cmake --build build-release --target bench_serve" >&2
    exit 1
fi

# Dozens of client sockets plus worker pipes; the default soft
# limit of 1024 is tight on some CI hosts.
ulimit -n 4096 2>/dev/null || true

"$build/bench/bench_serve" "$out"

echo "wrote $out" >&2
