#!/bin/sh
# Run the simulator-throughput microbenchmarks and emit
# BENCH_simspeed.json (google-benchmark JSON, incl. cycles/s and
# MIPS counters per engine config).
#
# The build must be a Release build: the script refuses any other
# CMAKE_BUILD_TYPE (numbers from debug-ish builds are not
# comparable and must never land in BENCH_simspeed.json), and it
# records/validates library_build_type in the emitted JSON context.
#
# Also guards two perf promises:
#  - observability no-cost-when-disabled: BM_CoreTraceOff (event
#    sink detached) must stay within SMTSIM_BENCH_TRACE_PCT percent
#    (default 2) of the plain BM_Core/4 row from the same run
#    (docs/OBSERVABILITY.md);
#  - functional-first speedup: BM_Fastpath must reach at least
#    SMTSIM_BENCH_FAST_X times (default 3) the MIPS of
#    BM_Interpreter on the same kernel (docs/PERF.md).
#
# Usage: scripts/bench_simspeed.sh [build-dir] [out.json]
#   SMTSIM_BENCH_MIN_TIME   benchmark_min_time seconds (default 0.5;
#                           use e.g. 0.1 for a CI smoke run)
#   SMTSIM_BENCH_TRACE_PCT  allowed tracing-disabled overhead in
#                           percent (default 2); set to "skip" to
#                           disable the guard
#   SMTSIM_BENCH_FAST_X     required fast-engine speedup over the
#                           interpreter (default 3); set to "skip"
#                           to disable the guard
set -eu

build=${1:-build}
out=${2:-BENCH_simspeed.json}
min_time=${SMTSIM_BENCH_MIN_TIME:-0.5}
trace_pct=${SMTSIM_BENCH_TRACE_PCT:-2}
fast_x=${SMTSIM_BENCH_FAST_X:-3}

if [ ! -x "$build/bench/bench_simspeed" ]; then
    echo "bench_simspeed not built in $build (cmake --build $build)" >&2
    exit 1
fi

# Refuse non-Release builds up front: the benchmark binary cannot
# tell how the library it links was compiled, so read the build
# type straight out of the CMake cache.
if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "bench guard: $build/CMakeCache.txt not found (not a CMake build dir?)" >&2
    exit 1
fi
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
    echo "bench guard: $build is a '${build_type:-<unset>}' build;" \
         "simulator-throughput numbers are only meaningful from a" \
         "Release build:" >&2
    echo "    cmake -B build-release -DCMAKE_BUILD_TYPE=Release &&" \
         "cmake --build build-release --target bench_simspeed" >&2
    exit 1
fi

"$build/bench/bench_simspeed" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_context=library_build_type=Release

# Belt and braces: the context we just asked for must actually be in
# the artifact, so downstream consumers (EXPERIMENTS.md, CI diffs)
# can trust any BENCH_simspeed.json they are handed.
python3 - "$out" <<'EOF'
import json
import sys

out = sys.argv[1]
ctx = json.load(open(out))["context"]
lbt = ctx.get("library_build_type")
if lbt != "Release":
    sys.exit(f"bench guard: {out} context.library_build_type is "
             f"{lbt!r}, expected 'Release'")
EOF

echo "wrote $out" >&2

if [ "$fast_x" = "skip" ]; then
    echo "fastpath speedup guard skipped" >&2
else
    # Same kernel, same MIPS definition, same run — the ratio is the
    # functional-first headline number (docs/PERF.md).
    python3 - "$out" "$fast_x" <<'EOF'
import json
import sys

out, need = sys.argv[1], float(sys.argv[2])
rows = {b["name"]: b for b in json.load(open(out))["benchmarks"]}
try:
    interp = rows["BM_Interpreter"]["MIPS"]
    fast = rows["BM_Fastpath"]["MIPS"]
except KeyError as missing:
    sys.exit(f"bench guard: row {missing} missing from {out}")
ratio = fast / interp
print(f"fast engine: {fast:.1f} MIPS vs interpreter {interp:.1f} "
      f"MIPS ({ratio:.2f}x)", file=sys.stderr)
if ratio < need:
    sys.exit(f"bench guard: fast-engine speedup {ratio:.2f}x is "
             f"below the required {need:.1f}x over BM_Interpreter")
EOF
fi

if [ "$trace_pct" = "skip" ]; then
    echo "tracing-overhead guard skipped" >&2
    exit 0
fi

# Dedicated guard run: the two rows are randomly interleaved and
# repeated so the median comparison is robust against scheduler
# noise on shared runners.
guard_json=$(mktemp)
trap 'rm -f "$guard_json"' EXIT
"$build/bench/bench_simspeed" \
    --benchmark_filter='BM_Core/4$|BM_CoreTraceOff' \
    --benchmark_min_time=0.3 \
    --benchmark_repetitions=7 \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$guard_json" \
    --benchmark_out_format=json >/dev/null

python3 - "$guard_json" "$trace_pct" <<'EOF'
import json
import sys

out, pct = sys.argv[1], float(sys.argv[2])
rows = {b["name"]: b for b in json.load(open(out))["benchmarks"]}
try:
    base = rows["BM_Core/4_median"]["cpu_time"]
    off = rows["BM_CoreTraceOff_median"]["cpu_time"]
except KeyError as missing:
    sys.exit(f"bench guard: row {missing} missing from {out}")
over = 100.0 * (off / base - 1.0)
print(f"tracing disabled: {over:+.2f}% vs BM_Core/4 (median of 7, "
      f"interleaved)", file=sys.stderr)
if over > pct:
    sys.exit(f"bench guard: tracing-disabled overhead {over:.2f}% "
             f"exceeds {pct:.1f}% (event emission must hide behind "
             f"a null-sink check)")
EOF
