#!/bin/sh
# Run the simulator-throughput microbenchmarks and emit
# BENCH_simspeed.json (google-benchmark JSON, incl. cycles/s and
# MIPS counters per engine config).
#
# Also guards the observability layer's no-cost-when-disabled
# promise: BM_CoreTraceOff (event sink detached) must stay within
# SMTSIM_BENCH_TRACE_PCT percent (default 2) of the plain BM_Core/4
# row from the same run. docs/OBSERVABILITY.md documents the
# contract.
#
# Usage: scripts/bench_simspeed.sh [build-dir] [out.json]
#   SMTSIM_BENCH_MIN_TIME   benchmark_min_time seconds (default 0.5;
#                           use e.g. 0.1 for a CI smoke run)
#   SMTSIM_BENCH_TRACE_PCT  allowed tracing-disabled overhead in
#                           percent (default 2); set to "skip" to
#                           disable the guard
set -eu

build=${1:-build}
out=${2:-BENCH_simspeed.json}
min_time=${SMTSIM_BENCH_MIN_TIME:-0.5}
trace_pct=${SMTSIM_BENCH_TRACE_PCT:-2}

if [ ! -x "$build/bench/bench_simspeed" ]; then
    echo "bench_simspeed not built in $build (cmake --build $build)" >&2
    exit 1
fi

"$build/bench/bench_simspeed" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json

echo "wrote $out" >&2

if [ "$trace_pct" = "skip" ]; then
    echo "tracing-overhead guard skipped" >&2
    exit 0
fi

# Dedicated guard run: the two rows are randomly interleaved and
# repeated so the median comparison is robust against scheduler
# noise on shared runners.
guard_json=$(mktemp)
trap 'rm -f "$guard_json"' EXIT
"$build/bench/bench_simspeed" \
    --benchmark_filter='BM_Core/4$|BM_CoreTraceOff' \
    --benchmark_min_time=0.3 \
    --benchmark_repetitions=7 \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$guard_json" \
    --benchmark_out_format=json >/dev/null

python3 - "$guard_json" "$trace_pct" <<'EOF'
import json
import sys

out, pct = sys.argv[1], float(sys.argv[2])
rows = {b["name"]: b for b in json.load(open(out))["benchmarks"]}
try:
    base = rows["BM_Core/4_median"]["cpu_time"]
    off = rows["BM_CoreTraceOff_median"]["cpu_time"]
except KeyError as missing:
    sys.exit(f"bench guard: row {missing} missing from {out}")
over = 100.0 * (off / base - 1.0)
print(f"tracing disabled: {over:+.2f}% vs BM_Core/4 (median of 7, "
      f"interleaved)", file=sys.stderr)
if over > pct:
    sys.exit(f"bench guard: tracing-disabled overhead {over:.2f}% "
             f"exceeds {pct:.1f}% (event emission must hide behind "
             f"a null-sink check)")
EOF
