#!/bin/sh
# Run the simulator-throughput microbenchmarks and emit
# BENCH_simspeed.json (google-benchmark JSON, incl. cycles/s and
# MIPS counters per engine config).
#
# Usage: scripts/bench_simspeed.sh [build-dir] [out.json]
#   SMTSIM_BENCH_MIN_TIME  benchmark_min_time seconds (default 0.5;
#                          use e.g. 0.1 for a CI smoke run)
set -eu

build=${1:-build}
out=${2:-BENCH_simspeed.json}
min_time=${SMTSIM_BENCH_MIN_TIME:-0.5}

if [ ! -x "$build/bench/bench_simspeed" ]; then
    echo "bench_simspeed not built in $build (cmake --build $build)" >&2
    exit 1
fi

"$build/bench/bench_simspeed" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json

echo "wrote $out" >&2
