#!/bin/sh
# Long differential-fuzz soak: replay the checked-in regression
# corpus, then fuzz a large batch of fresh programs with shrinking
# enabled. Divergence repros are written to the corpus directory and
# the exit status is non-zero, so CI fails loudly.
#
# Usage: scripts/fuzz_soak.sh [build-dir] [runs] [seed]
#   build-dir  default: build (must already contain smtsim-fuzz)
#   runs       default: 2000
#   seed       default: derived from the UTC date, so every night
#              explores new programs while staying reproducible
#   SMTSIM_FUZZ_CORPUS  output dir for repros (default fuzz-findings)
set -eu

build=${1:-build}
runs=${2:-2000}
seed=${3:-$(date -u +%Y%m%d)}
corpus=${SMTSIM_FUZZ_CORPUS:-fuzz-findings}

fuzz="$build/tools/smtsim-fuzz"
if [ ! -x "$fuzz" ]; then
    echo "smtsim-fuzz not built in $build (cmake --build $build)" >&2
    exit 2
fi

echo "fuzz soak: runs=$runs seed=$seed corpus=$corpus"
"$fuzz" --replay tests/data/fuzz-corpus
# Lint soundness cell: cross-tabulate the static concurrency
# verifier against bounded runs -- generated clean programs must
# stay diagnostic-free and finish, injected bug classes must be
# flagged and hang (docs/ANALYSIS.md). Mismatch repros land in the
# same findings directory as divergences.
"$fuzz" --lint-oracle "$runs" --seed "$seed" --corpus "$corpus" \
    --quiet
# --lint: every generated program must pass the static verifier
# (docs/ANALYSIS.md) before it executes; a diagnostic fails the run
# like a divergence.
exec "$fuzz" --lint --runs "$runs" --seed "$seed" --shrink \
    --corpus "$corpus"
