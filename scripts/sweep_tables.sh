#!/usr/bin/env bash
# Regenerate the grid-sweep tables (Table 2, Table 3, per-unit
# utilization) through the smtsim::lab experiment engine: all
# simulation points run in parallel across host cores and are
# cached content-addressed under .smtsim-cache/, so an interrupted
# or repeated regeneration only simulates what is missing.
#
# Usage: scripts/sweep_tables.sh [results-dir]
#
# Environment:
#   SMTSIM_LAB_JOBS       worker threads (default: host cores)
#   SMTSIM_LAB_CACHE_DIR  cache directory (default .smtsim-cache)
set -euo pipefail
cd "$(dirname "$0")/.."

outdir=${1:-results}
export SMTSIM_LAB_CACHE_DIR=${SMTSIM_LAB_CACHE_DIR:-.smtsim-cache}

cmake -B build -S . >/dev/null
cmake --build build -j --target \
    bench_table2 bench_table3 bench_utilization smtsim-sweep \
    >/dev/null

mkdir -p "$outdir"
for name in bench_table2 bench_table3 bench_utilization; do
    echo "--- $name"
    ./build/bench/$name | tee "$outdir/$name.txt"
done

# Machine-readable exports of the same grids for post-processing.
./build/tools/smtsim-sweep \
    --workload raytrace:width=24,height=24 \
    --slots 1,2,4,8 --lsu 1,2 --standby both --engine both \
    --cache-dir "$SMTSIM_LAB_CACHE_DIR" \
    --json "$outdir/sweep_table2.json" \
    --csv "$outdir/sweep_table2.csv" >/dev/null

echo
echo "Tables in $outdir/, result cache in $SMTSIM_LAB_CACHE_DIR/."
echo "Re-running is incremental: cached points are not resimulated."
