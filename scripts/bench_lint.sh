#!/bin/sh
# Run the static-verifier throughput microbenchmarks and emit
# BENCH_lint.json (google-benchmark JSON, incl. insns/s per row).
#
# The lint pass gates smtsim-run --lint and every smtsim-serve
# admission, so its cost is tracked like simulator throughput
# (docs/ANALYSIS.md).
#
# The build must be a Release build: the script refuses any other
# CMAKE_BUILD_TYPE (numbers from debug-ish builds are not
# comparable and must never land in BENCH_lint.json), and it
# records/validates library_build_type in the emitted JSON context.
#
# Usage: scripts/bench_lint.sh [build-dir] [out.json]
#   SMTSIM_BENCH_MIN_TIME  benchmark_min_time seconds (default 0.5;
#                          use e.g. 0.1 for a CI smoke run)
set -eu

build=${1:-build}
out=${2:-BENCH_lint.json}
min_time=${SMTSIM_BENCH_MIN_TIME:-0.5}

if [ ! -x "$build/bench/bench_lint" ]; then
    echo "bench_lint not built in $build (cmake --build $build" \
         "--target bench_lint)" >&2
    exit 1
fi

# Refuse non-Release builds up front: the benchmark binary cannot
# tell how the library it links was compiled, so read the build
# type straight out of the CMake cache.
if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "bench guard: $build/CMakeCache.txt not found (not a CMake build dir?)" >&2
    exit 1
fi
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
    echo "bench guard: $build is a '${build_type:-<unset>}' build;" \
         "verifier-throughput numbers are only meaningful from a" \
         "Release build:" >&2
    echo "    cmake -B build-release -DCMAKE_BUILD_TYPE=Release &&" \
         "cmake --build build-release --target bench_lint" >&2
    exit 1
fi

"$build/bench/bench_lint" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_context=library_build_type=Release

# Belt and braces: the context we just asked for must actually be
# in the artifact, so downstream consumers can trust any
# BENCH_lint.json they are handed.
python3 - "$out" <<'EOF'
import json
import sys

out = sys.argv[1]
ctx = json.load(open(out))["context"]
lbt = ctx.get("library_build_type")
if lbt != "Release":
    sys.exit(f"bench guard: {out} context.library_build_type is "
             f"{lbt!r}, expected 'Release'")
EOF

echo "wrote $out" >&2
