#!/bin/sh
# Run the many-core scaling benchmarks and emit BENCH_manycore.json
# (google-benchmark JSON: per-row corecycles/s, MIPS and
# logical_processors, from 1x1 up to 64 cores x 8 slots = 512
# logical processors).
#
# The build must be a Release build: the script refuses any other
# CMAKE_BUILD_TYPE (scaling numbers from debug-ish builds are not
# comparable), and it records/validates library_build_type in the
# emitted JSON context.
#
# Also guards the parallel-host promise: on the 16-core machine the
# 4-host-thread row must reach at least SMTSIM_BENCH_MC_EFF
# parallel efficiency (t1 / (4 * t4), real time) over the
# 1-host-thread row. The guard is skipped automatically when the
# host has fewer than 4 CPUs — barrier hand-offs on an
# oversubscribed host measure the scheduler, not the simulator.
#
# Usage: scripts/bench_manycore.sh [build-dir] [out.json]
#   SMTSIM_BENCH_MIN_TIME  benchmark_min_time seconds (default 0.5;
#                          use e.g. 0.1 for a CI smoke run)
#   SMTSIM_BENCH_MC_EFF    required 4-thread parallel efficiency
#                          (default 0.3); set to "skip" to disable
set -eu

build=${1:-build}
out=${2:-BENCH_manycore.json}
min_time=${SMTSIM_BENCH_MIN_TIME:-0.5}
eff=${SMTSIM_BENCH_MC_EFF:-0.3}

if [ ! -x "$build/bench/bench_manycore" ]; then
    echo "bench_manycore not built in $build (cmake --build $build)" >&2
    exit 1
fi

# Refuse non-Release builds up front: the benchmark binary cannot
# tell how the library it links was compiled, so read the build
# type straight out of the CMake cache.
if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "bench guard: $build/CMakeCache.txt not found (not a CMake build dir?)" >&2
    exit 1
fi
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
    echo "bench guard: $build is a '${build_type:-<unset>}' build;" \
         "many-core scaling numbers are only meaningful from a" \
         "Release build:" >&2
    echo "    cmake -B build-release -DCMAKE_BUILD_TYPE=Release &&" \
         "cmake --build build-release --target bench_manycore" >&2
    exit 1
fi

"$build/bench/bench_manycore" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_context=library_build_type=Release

# The context we just asked for must actually be in the artifact, so
# downstream consumers can trust any BENCH_manycore.json handed to
# them.
python3 - "$out" <<'EOF'
import json
import sys

out = sys.argv[1]
ctx = json.load(open(out))["context"]
lbt = ctx.get("library_build_type")
if lbt != "Release":
    sys.exit(f"bench guard: {out} context.library_build_type is "
             f"{lbt!r}, expected 'Release'")
EOF

echo "wrote $out" >&2

if [ "$eff" = "skip" ]; then
    echo "parallel-efficiency guard skipped" >&2
    exit 0
fi

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -lt 4 ]; then
    echo "parallel-efficiency guard skipped: host has $ncpu CPU(s)," \
         "need >= 4 to run 4 host threads in parallel" >&2
    exit 0
fi

python3 - "$out" "$eff" <<'EOF'
import json
import sys

out, need = sys.argv[1], float(sys.argv[2])
rows = {b["name"]: b for b in json.load(open(out))["benchmarks"]}
try:
    t1 = rows["BM_ManyCore/16/1/real_time"]["real_time"]
    t4 = rows["BM_ManyCore/16/4/real_time"]["real_time"]
except KeyError as missing:
    sys.exit(f"bench guard: row {missing} missing from {out}")
eff = t1 / (4.0 * t4)
print(f"16-core machine: 1 thread {t1:.1f} vs 4 threads {t4:.1f} "
      f"({rows['BM_ManyCore/16/1/real_time']['time_unit']}) -> "
      f"parallel efficiency {eff:.2f}", file=sys.stderr)
if eff < need:
    sys.exit(f"bench guard: 4-thread parallel efficiency {eff:.2f} "
             f"is below the required {need:.2f} (quantum barrier or "
             f"worker-pool overhead regressed)")
EOF
