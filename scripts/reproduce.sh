#!/usr/bin/env bash
# Reproduce every experiment: build, run the full test suite, and
# regenerate all tables/figures into results/.
#
# The grid-sweep benches (Table 2/3, utilization) run their points
# in parallel through the smtsim::lab engine and reuse cached
# results across reruns; see scripts/sweep_tables.sh for the
# sweep-only fast path and docs/LAB.md for the engine.
set -euo pipefail
cd "$(dirname "$0")/.."

# Resumable result cache for the lab-driven benches: a re-run after
# an interruption only simulates the missing grid points.
export SMTSIM_LAB_CACHE_DIR=${SMTSIM_LAB_CACHE_DIR:-.smtsim-cache}

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

mkdir -p results
echo "=== benches ==="
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "--- $name"
    if [ "$name" = "bench_simspeed" ]; then
        "$b" --benchmark_min_time=0.2 | tee "results/$name.txt"
    else
        "$b" | tee "results/$name.txt"
    fi
done

echo
echo "All outputs written to results/. Compare with EXPERIMENTS.md."
