#!/usr/bin/env bash
# Reproduce every experiment: build, run the full test suite, and
# regenerate all tables/figures into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

mkdir -p results
echo "=== benches ==="
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "--- $name"
    if [ "$name" = "bench_simspeed" ]; then
        "$b" --benchmark_min_time=0.2 | tee "results/$name.txt"
    else
        "$b" | tee "results/$name.txt"
    fi
done

echo
echo "All outputs written to results/. Compare with EXPERIMENTS.md."
