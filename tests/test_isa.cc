#include <gtest/gtest.h>

#include "base/logging.hh"
#include "isa/insn.hh"
#include "isa/op.hh"

using namespace smtsim;

namespace
{

/** Build a representative instruction for @p op with busy fields. */
Insn
sample(Op op)
{
    Insn insn;
    insn.op = op;
    switch (opMeta(op).format) {
      case Format::R3:
        insn.rd = 1; insn.rs = 2; insn.rt = 3;
        break;
      case Format::R2:
      case Format::FR2:
        insn.rd = 4; insn.rs = 5;
        break;
      case Format::SHI:
        insn.rd = 6; insn.rs = 7; insn.imm = 13;
        break;
      case Format::I:
        insn.rt = 8; insn.rs = 9;
        insn.imm = (op == Op::ADDI || op == Op::SLTI) ? -100
                                                      : 0xabc;
        break;
      case Format::LUIF:
        insn.rt = 10; insn.imm = 0xbeef;
        break;
      case Format::FR3:
        insn.rd = 11; insn.rs = 12; insn.rt = 13;
        break;
      case Format::FCMP:
        insn.rd = 14; insn.rs = 15; insn.rt = 16;
        break;
      case Format::ITOFF:
      case Format::FTOIF:
        insn.rd = 17; insn.rs = 18;
        break;
      case Format::MEM:
        insn.rt = 19; insn.rs = 20; insn.imm = -48;
        break;
      case Format::BR2:
        insn.rs = 21; insn.rt = 22; insn.imm = -5;
        break;
      case Format::BR1:
        insn.rs = 23; insn.imm = 100;
        break;
      case Format::JF:
        insn.imm = 0x123456;
        break;
      case Format::JRF:
        insn.rs = 24;
        break;
      case Format::JALRF:
        insn.rd = 25; insn.rs = 26;
        break;
      case Format::THR0:
        break;
      case Format::THR1D:
        insn.rd = 27;
        break;
      case Format::THR2:
        insn.rs = 28; insn.rt = 29;
        break;
      case Format::ROT:
        insn.rt = 1; insn.imm = 16;
        break;
    }
    return insn;
}

class OpRoundTrip : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(OpRoundTrip, EncodeDecodeIdentity)
{
    const Op op = static_cast<Op>(GetParam());
    const Insn original = sample(op);
    const std::uint32_t word = encode(original);
    const Insn decoded = decode(word);
    EXPECT_EQ(decoded.op, original.op)
        << opMeta(op).mnemonic;
    // Compare only the fields the format uses, via re-encoding.
    EXPECT_EQ(encode(decoded), word) << opMeta(op).mnemonic;
    EXPECT_EQ(disassemble(decoded), disassemble(original));
}

TEST_P(OpRoundTrip, MetadataConsistent)
{
    const Op op = static_cast<Op>(GetParam());
    const OpMeta &meta = opMeta(op);
    EXPECT_GE(meta.issue_latency, 1);
    EXPECT_GE(meta.result_latency, 1);
    EXPECT_NE(meta.mnemonic, nullptr);
    if (isMemOp(op)) {
        EXPECT_EQ(meta.fu, FuClass::LoadStore);
        EXPECT_EQ(meta.issue_latency, 2);   // 2-cycle data cache
    }
    if (isBranchOp(op) || isThreadCtlOp(op)) {
        EXPECT_EQ(meta.fu, FuClass::None);
    }
}

TEST_P(OpRoundTrip, SrcsAndDstWellFormed)
{
    const Op op = static_cast<Op>(GetParam());
    const Insn insn = sample(op);
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    ASSERT_GE(n, 0);
    ASSERT_LE(n, 3);
    for (int i = 0; i < n; ++i) {
        EXPECT_TRUE(srcs[i].valid());
        EXPECT_LT(srcs[i].idx, kNumRegs);
        // r0 never appears as a source dependence.
        if (srcs[i].file == RF::Int) {
            EXPECT_NE(srcs[i].idx, 0);
        }
    }
    if (isStoreOp(op)) {
        EXPECT_FALSE(insn.dst().valid());
    }
    if (isLoadOp(op)) {
        EXPECT_TRUE(insn.dst().valid());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpRoundTrip, ::testing::Range(0, kNumOps),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            opMeta(static_cast<Op>(info.param)).mnemonic);
    });

TEST(IsaTable, LatenciesMatchPaperTable1)
{
    EXPECT_EQ(opMeta(Op::ADD).result_latency, 2);
    EXPECT_EQ(opMeta(Op::AND_).result_latency, 2);
    EXPECT_EQ(opMeta(Op::SLT).result_latency, 2);
    EXPECT_EQ(opMeta(Op::SLL).result_latency, 2);
    EXPECT_EQ(opMeta(Op::MUL).result_latency, 6);
    EXPECT_EQ(opMeta(Op::DIVQ).result_latency, 6);
    EXPECT_EQ(opMeta(Op::FADD).result_latency, 4);
    EXPECT_EQ(opMeta(Op::FCMPLT).result_latency, 4);
    EXPECT_EQ(opMeta(Op::FABS).result_latency, 2);
    EXPECT_EQ(opMeta(Op::FNEG).result_latency, 2);
    EXPECT_EQ(opMeta(Op::LW).issue_latency, 2);
    EXPECT_EQ(opMeta(Op::SW).issue_latency, 2);
    EXPECT_EQ(opMeta(Op::LW).result_latency, 4);
}

TEST(IsaTable, FuClassAssignment)
{
    EXPECT_EQ(opMeta(Op::ADD).fu, FuClass::IntAlu);
    EXPECT_EQ(opMeta(Op::SLL).fu, FuClass::Shifter);
    EXPECT_EQ(opMeta(Op::MUL).fu, FuClass::IntMul);
    EXPECT_EQ(opMeta(Op::FADD).fu, FuClass::FpAdd);
    EXPECT_EQ(opMeta(Op::FMUL).fu, FuClass::FpMul);
    EXPECT_EQ(opMeta(Op::FDIV).fu, FuClass::FpDiv);
    EXPECT_EQ(opMeta(Op::FSQRT).fu, FuClass::FpDiv);
    EXPECT_EQ(opMeta(Op::LW).fu, FuClass::LoadStore);
}

TEST(IsaQueries, Classification)
{
    EXPECT_TRUE(isBranchOp(Op::BEQ));
    EXPECT_TRUE(isBranchOp(Op::JALR));
    EXPECT_FALSE(isBranchOp(Op::ADD));
    EXPECT_TRUE(isCondBranchOp(Op::BGEZ));
    EXPECT_FALSE(isCondBranchOp(Op::J));
    EXPECT_TRUE(isLoadOp(Op::LF));
    EXPECT_TRUE(isStoreOp(Op::PSTF));
    EXPECT_TRUE(isPriorityStoreOp(Op::PSTW));
    EXPECT_FALSE(isPriorityStoreOp(Op::SW));
    EXPECT_TRUE(isThreadCtlOp(Op::FASTFORK));
    EXPECT_TRUE(isThreadCtlOp(Op::SETRMODE));
    EXPECT_FALSE(isThreadCtlOp(Op::BEQ));
    EXPECT_TRUE(isFpFormatOp(Op::LF));
    EXPECT_FALSE(isFpFormatOp(Op::LW));
}

TEST(IsaDecode, StoresReadDataRegister)
{
    Insn sw;
    sw.op = Op::SW;
    sw.rs = 4;      // base
    sw.rt = 5;      // data
    RegRef srcs[3];
    const int n = sw.srcs(srcs);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(srcs[0].file, RF::Int);
    EXPECT_EQ(srcs[0].idx, 4);
    EXPECT_EQ(srcs[1].idx, 5);

    Insn sf = sw;
    sf.op = Op::SF;
    const int m = sf.srcs(srcs);
    ASSERT_EQ(m, 2);
    EXPECT_EQ(srcs[0].file, RF::Int);   // base stays integer
    EXPECT_EQ(srcs[1].file, RF::Fp);    // data is FP
}

TEST(IsaDecode, JalWritesR31)
{
    Insn jal;
    jal.op = Op::JAL;
    EXPECT_EQ(jal.dst().file, RF::Int);
    EXPECT_EQ(jal.dst().idx, 31);
    Insn j;
    j.op = Op::J;
    EXPECT_FALSE(j.dst().valid());
}

TEST(IsaDecode, BadWordThrows)
{
    // Primary opcode 0x3f is unassigned.
    EXPECT_THROW(decode(0xfc000000u), FatalError);
    // INTOP with out-of-range funct.
    EXPECT_THROW(decode(0x0000003fu), FatalError);
}

TEST(IsaDisasm, Spot)
{
    Insn insn;
    insn.op = Op::ADDI;
    insn.rt = 1;
    insn.rs = 2;
    insn.imm = -7;
    EXPECT_EQ(disassemble(insn), "addi r1, r2, -7");

    insn = Insn{};
    insn.op = Op::LF;
    insn.rt = 3;
    insn.rs = 4;
    insn.imm = 16;
    EXPECT_EQ(disassemble(insn), "lf f3, 16(r4)");

    insn = Insn{};
    insn.op = Op::FASTFORK;
    EXPECT_EQ(disassemble(insn), "fastfork");
}
