/**
 * @file
 * Cross-engine equivalence properties that do not fit the
 * core-centric sweep in test_core_func.cc: baseline-vs-interpreter
 * seeds, whole-workload three-way agreement, and input robustness.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "harness/runner.hh"
#include "interp/interpreter.hh"
#include "test_common.hh"
#include "trace/synth.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

class BaselineSeeds : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(BaselineSeeds, BaselineMatchesInterpreter)
{
    SynthParams sp;
    sp.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
    sp.iterations = 20;
    sp.parallel = false;
    const Program prog = makeSyntheticKernel(sp);
    const Addr scratch = prog.symbol("scratch");

    MainMemory im;
    prog.loadInto(im);
    Interpreter interp(prog, im);
    const InterpResult ir = interp.run();
    ASSERT_TRUE(ir.completed);

    MainMemory bm;
    prog.loadInto(bm);
    BaselineProcessor cpu(prog, bm);
    const RunStats bs = cpu.run();
    ASSERT_TRUE(bs.finished);
    EXPECT_EQ(bs.instructions, ir.steps);

    for (Addr a = scratch; a < scratch + 8 * 64; a += 4)
        ASSERT_EQ(bm.read32(a), im.read32(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSeeds,
                         ::testing::Range(1, 11));

TEST(Equivalence, ThreeWayAgreementOnEveryWorkload)
{
    RayTraceParams rp;
    rp.width = 5;
    rp.height = 5;
    rp.num_spheres = 3;
    Lk1Params lp;
    lp.n = 16;
    ListWalkParams wp;
    wp.num_nodes = 10;
    MatmulParams mp;
    mp.n = 4;
    BsearchParams bp;
    bp.table_size = 16;
    bp.queries_per_thread = 4;
    RadiosityParams dp;
    dp.num_patches = 5;
    RecurrenceParams cp;
    cp.n = 12;

    const Workload workloads[] = {
        makeRayTrace(rp),     makeLivermore1(lp),
        makeListWalk(wp),     makeMatmul(mp),
        makeBsearch(bp),      makeRadiosity(dp),
        makeRecurrence(cp),
    };
    for (const Workload &w : workloads) {
        const Outcome interp1 = runInterp(w, 1);
        const Outcome base = runBaseline(w);
        CoreConfig cfg;
        cfg.num_slots = 2;
        const Outcome interp2 = runInterp(w, cfg.num_slots);
        const Outcome core = runCore(w, cfg);
        EXPECT_TRUE(interp1.ok) << w.name << " interp";
        EXPECT_TRUE(base.ok) << w.name << " baseline";
        EXPECT_TRUE(core.ok) << w.name << " core";

        // Agreement extends to the dynamic instruction count: the
        // baseline retires exactly the single-thread projection and
        // the core exactly the S-thread one.
        EXPECT_EQ(base.stats.instructions, interp1.stats.instructions)
            << w.name << " baseline retired count";
        EXPECT_EQ(core.stats.instructions, interp2.stats.instructions)
            << w.name << " core retired count";
    }
}

TEST(Equivalence, TrapParityOnUndecodableWord)
{
    // A reachable undecodable word must trap on every engine, not
    // execute as garbage on some of them.
    Program prog = assemble("main:   addi r8, r0, 1\n"
                            "        nop\n"
                            "        halt\n");
    prog.text[1] = 0xfc000000;      // unknown primary opcode 63

    {
        MainMemory mem;
        prog.loadInto(mem);
        EXPECT_THROW(
            {
                Interpreter interp(prog, mem);
                interp.run();
            },
            FatalError);
    }
    {
        MainMemory mem;
        prog.loadInto(mem);
        EXPECT_THROW(
            {
                BaselineProcessor cpu(prog, mem);
                cpu.run();
            },
            FatalError);
    }
    {
        MainMemory mem;
        prog.loadInto(mem);
        EXPECT_THROW(
            {
                MultithreadedProcessor cpu(prog, mem);
                cpu.run();
            },
            FatalError);
    }
}

TEST(Equivalence, WidthSweepKeepsBaselineResults)
{
    SynthParams sp;
    sp.seed = 77;
    sp.iterations = 16;
    sp.parallel = false;
    const Program prog = makeSyntheticKernel(sp);
    const Addr scratch = prog.symbol("scratch");

    MainMemory ref;
    prog.loadInto(ref);
    BaselineProcessor one(prog, ref);
    ASSERT_TRUE(one.run().finished);

    for (int width : {2, 4, 8}) {
        MainMemory mem;
        prog.loadInto(mem);
        BaselineConfig cfg;
        cfg.width = width;
        cfg.fus.int_alu = 2;
        cfg.fus.load_store = 2;
        BaselineProcessor cpu(prog, mem, cfg);
        ASSERT_TRUE(cpu.run().finished) << "width " << width;
        for (Addr a = scratch; a < scratch + 8 * 64; a += 4) {
            ASSERT_EQ(mem.read32(a), ref.read32(a))
                << "width " << width;
        }
    }
}

TEST(Equivalence, CrlfSourceAssemblesIdentically)
{
    const std::string unix_src =
        "main:   addi r1, r0, 3\n        add r2, r1, r1\n"
        "        halt\n";
    std::string dos_src;
    for (char c : unix_src) {
        if (c == '\n')
            dos_src += '\r';
        dos_src += c;
    }
    const Program a = assemble(unix_src);
    const Program b = assemble(dos_src);
    EXPECT_EQ(a.text, b.text);
}

TEST(Equivalence, InterpreterBudgetExhaustionReported)
{
    Machine m("main: j main\n");
    InterpConfig cfg;
    cfg.max_steps = 1000;
    Interpreter interp(m.prog, m.mem, cfg);
    const InterpResult r = interp.run();
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.steps, 1000u);
}
