/**
 * @file
 * Cross-product stress matrix: every workload on a grid of machine
 * configurations, each verified against its reference checker.
 * Each cell exercises a genuinely different interleaving of the
 * schedule units, queue registers, caches and fetch engine.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace smtsim;

namespace
{

Workload
workloadByName(const std::string &name)
{
    if (name == "raytrace") {
        RayTraceParams p;
        p.width = 6;
        p.height = 6;
        p.num_spheres = 3;
        return makeRayTrace(p);
    }
    if (name == "lk1") {
        Lk1Params p;
        p.n = 24;
        p.parallel = true;
        return makeLivermore1(p);
    }
    if (name == "eagerwalk") {
        ListWalkParams p;
        p.num_nodes = 16;
        p.eager = true;
        return makeListWalk(p);
    }
    if (name == "recurrence") {
        RecurrenceParams p;
        p.n = 24;
        p.variant = RecurrenceVariant::DoacrossQueue;
        return makeRecurrence(p);
    }
    if (name == "matmul") {
        MatmulParams p;
        p.n = 5;
        return makeMatmul(p);
    }
    if (name == "bsearch") {
        BsearchParams p;
        p.table_size = 48;
        p.queries_per_thread = 6;
        return makeBsearch(p);
    }
    RadiosityParams p;
    p.num_patches = 6;
    return makeRadiosity(p);
}

struct Cell
{
    const char *workload;
    int slots;
    int lsu;
    int width;
    bool standby;
    bool private_icache;
    bool caches;
};

std::string
cellName(const Cell &c)
{
    return std::string(c.workload) + "_s" +
           std::to_string(c.slots) + "l" + std::to_string(c.lsu) +
           "w" + std::to_string(c.width) +
           (c.standby ? "" : "_nosb") +
           (c.private_icache ? "_priv" : "") +
           (c.caches ? "_cache" : "");
}

class ConfigMatrix : public ::testing::TestWithParam<Cell>
{
};

} // namespace

TEST_P(ConfigMatrix, WorkloadVerifiesOnCore)
{
    const Cell &c = GetParam();
    const Workload w = workloadByName(c.workload);

    CoreConfig cfg;
    cfg.num_slots = c.slots;
    cfg.fus.load_store = c.lsu;
    cfg.width = c.width;
    cfg.standby_enabled = c.standby;
    cfg.private_icache = c.private_icache;
    // Queue-register workloads need iteration-ordered priority.
    const std::string name(c.workload);
    if (name == "lk1" || name == "eagerwalk" ||
        name == "recurrence") {
        cfg.rotation_mode = RotationMode::Explicit;
    }
    if (c.caches) {
        cfg.dcache.size_bytes = 512;
        cfg.dcache.miss_penalty = 15;
        cfg.icache.size_bytes = 512;
        cfg.icache.miss_penalty = 15;
    }

    const Outcome o = runCore(w, cfg);
    EXPECT_TRUE(o.ok) << o.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigMatrix,
    ::testing::Values(
        // Hybrid widths on every workload.
        Cell{"raytrace", 2, 1, 2, true, false, false},
        Cell{"lk1", 2, 2, 2, true, false, false},
        Cell{"eagerwalk", 2, 1, 2, true, false, false},
        Cell{"recurrence", 2, 1, 2, true, false, false},
        Cell{"matmul", 2, 2, 4, true, false, false},
        Cell{"bsearch", 2, 1, 2, true, false, false},
        Cell{"radiosity", 2, 1, 2, true, false, false},
        // No standby stations.
        Cell{"raytrace", 8, 2, 1, false, false, false},
        Cell{"eagerwalk", 4, 1, 1, false, false, false},
        Cell{"recurrence", 4, 1, 1, false, false, false},
        Cell{"lk1", 8, 1, 1, false, false, false},
        // Private fetch units.
        Cell{"raytrace", 3, 1, 1, true, true, false},
        Cell{"matmul", 5, 2, 1, true, true, false},
        Cell{"bsearch", 8, 2, 1, true, true, false},
        // Finite caches.
        Cell{"raytrace", 4, 2, 1, true, false, true},
        Cell{"eagerwalk", 4, 1, 1, true, false, true},
        Cell{"radiosity", 4, 1, 1, true, false, true},
        Cell{"matmul", 4, 1, 1, true, false, true},
        // Everything at once.
        Cell{"raytrace", 8, 2, 2, false, true, true},
        Cell{"bsearch", 4, 2, 2, false, false, true},
        Cell{"recurrence", 8, 1, 1, true, false, true},
        Cell{"eagerwalk", 8, 1, 2, true, true, false}),
    [](const ::testing::TestParamInfo<Cell> &info) {
        return cellName(info.param);
    });
