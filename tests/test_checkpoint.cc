/**
 * @file
 * Machine-checkpoint determinism: a run that is snapshotted at
 * cycle k, restored into a freshly constructed processor and run to
 * completion must be indistinguishable — RunStats, the detailed
 * stall counters, architectural registers, data memory — from the
 * same run left alone. Exercised over the real workloads and over
 * hundreds of fuzzer-generated programs at pseudo-random snapshot
 * cycles and machine shapes.
 */

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asmr/assembler.hh"
#include "core/processor.hh"
#include "fuzz/generate.hh"
#include "machine/manycore.hh"
#include "machine/manycore_json.hh"
#include "test_common.hh"
#include "workloads/workloads.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

void
expectSameStats(const RunStats &a, const RunStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.finished, b.finished) << what;
    EXPECT_EQ(a.fu_grants, b.fu_grants) << what;
    EXPECT_EQ(a.fu_busy, b.fu_busy) << what;
    EXPECT_EQ(a.unit_busy, b.unit_busy) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.loads, b.loads) << what;
    EXPECT_EQ(a.stores, b.stores) << what;
    EXPECT_EQ(a.standby_stalls, b.standby_stalls) << what;
    EXPECT_EQ(a.context_switches, b.context_switches) << what;
    EXPECT_EQ(a.writeback_conflicts, b.writeback_conflicts)
        << what;
    EXPECT_EQ(a.dcache_hits, b.dcache_hits) << what;
    EXPECT_EQ(a.dcache_misses, b.dcache_misses) << what;
    EXPECT_EQ(a.icache_hits, b.icache_hits) << what;
    EXPECT_EQ(a.icache_misses, b.icache_misses) << what;
}

struct FinalState
{
    RunStats stats;
    std::map<std::string, std::uint64_t, std::less<>> detail;
    std::vector<std::uint32_t> iregs;
    std::vector<double> fregs;
    std::vector<std::uint32_t> data;
};

FinalState
capture(const MultithreadedProcessor &cpu, const RunStats &stats,
        const CoreConfig &cfg, const Program &prog,
        const MainMemory &mem)
{
    FinalState st;
    st.stats = stats;
    st.detail = cpu.detail().all();
    for (int f = 0; f < cfg.frames(); ++f) {
        for (RegIndex r = 0; r < kNumRegs; ++r) {
            st.iregs.push_back(cpu.intReg(f, r));
            st.fregs.push_back(cpu.fpReg(f, r));
        }
    }
    const Addr base = prog.data_base;
    const Addr end = base + static_cast<Addr>(prog.data.size());
    for (Addr a = base; a < end; a += 4)
        st.data.push_back(mem.read32(a));
    return st;
}

void
expectSameState(const FinalState &ref, const FinalState &got,
                const std::string &what)
{
    expectSameStats(ref.stats, got.stats, what);
    EXPECT_EQ(ref.detail, got.detail) << what;
    ASSERT_EQ(ref.iregs.size(), got.iregs.size()) << what;
    EXPECT_EQ(ref.iregs, got.iregs) << what;
    for (std::size_t i = 0; i < ref.fregs.size(); ++i) {
        // Bit-level compare: NaN payloads must survive too.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.fregs[i]),
                  std::bit_cast<std::uint64_t>(got.fregs[i]))
            << what << " freg " << i;
    }
    EXPECT_EQ(ref.data, got.data) << what;
}

void
initMemory(const Workload &w, MainMemory &mem)
{
    w.program.loadInto(mem);
    if (w.init)
        w.init(mem);
}

/**
 * Run @p prog plain, then run it again snapshotting at @p at and
 * resuming into a fresh processor + memory; both final states must
 * match bit for bit.
 */
void
checkCheckpointExact(const Program &prog, const CoreConfig &cfg,
                     Cycle at, const std::string &what,
                     void (*init)(MainMemory &) = nullptr)
{
    MainMemory mem_ref;
    prog.loadInto(mem_ref);
    if (init)
        init(mem_ref);
    MultithreadedProcessor ref(prog, mem_ref, cfg);
    const RunStats ref_stats = ref.run();
    const FinalState ref_state =
        capture(ref, ref_stats, cfg, prog, mem_ref);

    // First half: run to the snapshot point and save.
    MainMemory mem_a;
    prog.loadInto(mem_a);
    if (init)
        init(mem_a);
    MultithreadedProcessor a(prog, mem_a, cfg);
    a.runUntil(at);
    std::stringstream ckpt;
    a.saveCheckpoint(ckpt);

    // Byte stability: the same state must serialize to the same
    // bytes every time (memory pages are sorted, nothing iterates
    // in address-order-unstable containers).
    std::stringstream ckpt2;
    a.saveCheckpoint(ckpt2);
    ASSERT_EQ(ckpt.str(), ckpt2.str()) << what;

    // Second half: fresh machine, restore, run to completion.
    MainMemory mem_b;
    MultithreadedProcessor b(prog, mem_b, cfg);
    b.restoreCheckpoint(ckpt);
    EXPECT_EQ(b.now(), a.now()) << what;
    const RunStats got_stats = b.run();
    const FinalState got_state =
        capture(b, got_stats, cfg, prog, mem_b);

    expectSameState(ref_state, got_state, what);

    // Save-restore-save must reproduce the checkpoint bytes.
    MainMemory mem_c;
    MultithreadedProcessor c(prog, mem_c, cfg);
    std::stringstream ckpt_in(ckpt2.str());
    c.restoreCheckpoint(ckpt_in);
    std::stringstream ckpt3;
    c.saveCheckpoint(ckpt3);
    EXPECT_EQ(ckpt2.str(), ckpt3.str()) << what;
}

} // namespace

TEST(Checkpoint, RunUntilSplitMatchesSingleRun)
{
    MatmulParams mp;
    mp.n = 6;
    const Workload w = makeMatmul(mp);
    CoreConfig cfg;
    cfg.max_cycles = 500'000;

    MainMemory mem_ref;
    initMemory(w, mem_ref);
    MultithreadedProcessor ref(w.program, mem_ref, cfg);
    const RunStats sr = ref.run();
    ASSERT_TRUE(sr.finished);

    MainMemory mem;
    initMemory(w, mem);
    MultithreadedProcessor cpu(w.program, mem, cfg);
    // Arbitrary uneven split points, including no-op repeats.
    for (Cycle stop : {7ull, 8ull, 100ull, 100ull, 1000ull})
        cpu.runUntil(stop);
    const RunStats ss = cpu.run();
    expectSameStats(sr, ss, "split run");
    EXPECT_EQ(ref.detail().all(), cpu.detail().all());
}

TEST(Checkpoint, WorkloadsResumeBitIdentically)
{
    struct Case
    {
        const char *name;
        Workload w;
        Cycle at;
    };
    MatmulParams mp;
    mp.n = 6;
    RayTraceParams rp;
    rp.width = 6;
    rp.height = 6;
    rp.num_spheres = 3;
    RecurrenceParams cq;
    cq.n = 12;
    cq.variant = RecurrenceVariant::DoacrossQueue;
    BsearchParams bp;
    bp.table_size = 16;
    bp.queries_per_thread = 4;

    std::vector<Case> cases;
    cases.push_back({"matmul", makeMatmul(mp), 500});
    cases.push_back({"raytrace", makeRayTrace(rp), 1000});
    cases.push_back({"recurrence-q", makeRecurrence(cq), 97});
    cases.push_back({"bsearch", makeBsearch(bp), 333});

    for (const Case &tc : cases) {
        CoreConfig cfg;
        cfg.max_cycles = 500'000;

        // Workload init functions close over parameters, so run
        // the generic checker inline here instead.
        MainMemory mem_ref;
        initMemory(tc.w, mem_ref);
        MultithreadedProcessor ref(tc.w.program, mem_ref, cfg);
        const RunStats sr = ref.run();
        ASSERT_TRUE(sr.finished) << tc.name;
        ASSERT_GT(sr.cycles, tc.at) << tc.name
            << ": snapshot point after the end of the run";
        const FinalState ref_state =
            capture(ref, sr, cfg, tc.w.program, mem_ref);

        MainMemory mem_a;
        initMemory(tc.w, mem_a);
        MultithreadedProcessor a(tc.w.program, mem_a, cfg);
        a.runUntil(tc.at);
        std::stringstream ckpt;
        a.saveCheckpoint(ckpt);

        MainMemory mem_b;
        MultithreadedProcessor b(tc.w.program, mem_b, cfg);
        b.restoreCheckpoint(ckpt);
        const RunStats sg = b.run();
        const FinalState got =
            capture(b, sg, cfg, tc.w.program, mem_b);
        expectSameState(ref_state, got, tc.name);

        if (tc.w.check) {
            std::string why;
            EXPECT_TRUE(tc.w.check(mem_b, &why))
                << tc.name << ": " << why;
        }
    }
}

TEST(Checkpoint, ChainedCheckpointsStayExact)
{
    // Checkpoint every 200 cycles, restoring into a fresh machine
    // each leg: errors would compound if any state leaked.
    MatmulParams mp;
    mp.n = 6;
    const Workload w = makeMatmul(mp);
    CoreConfig cfg;
    cfg.max_cycles = 500'000;

    MainMemory mem_ref;
    initMemory(w, mem_ref);
    MultithreadedProcessor ref(w.program, mem_ref, cfg);
    const RunStats sr = ref.run();
    const FinalState ref_state =
        capture(ref, sr, cfg, w.program, mem_ref);

    auto mem = std::make_unique<MainMemory>();
    initMemory(w, *mem);
    auto cpu = std::make_unique<MultithreadedProcessor>(
        w.program, *mem, cfg);
    RunStats sg;
    for (Cycle at = 200;; at += 200) {
        sg = cpu->runUntil(at);
        if (cpu->finished())
            break;
        std::stringstream ckpt;
        cpu->saveCheckpoint(ckpt);
        auto next_mem = std::make_unique<MainMemory>();
        auto next = std::make_unique<MultithreadedProcessor>(
            w.program, *next_mem, cfg);
        next->restoreCheckpoint(ckpt);
        cpu = std::move(next);
        mem = std::move(next_mem);
    }
    const FinalState got =
        capture(*cpu, sg, cfg, w.program, *mem);
    expectSameState(ref_state, got, "chained");
}

TEST(Checkpoint, FingerprintRejectsMismatchedConfig)
{
    MatmulParams mp;
    mp.n = 4;
    const Workload w = makeMatmul(mp);
    CoreConfig cfg;
    cfg.max_cycles = 100'000;

    MainMemory mem;
    initMemory(w, mem);
    MultithreadedProcessor cpu(w.program, mem, cfg);
    cpu.runUntil(100);
    std::stringstream ckpt;
    cpu.saveCheckpoint(ckpt);

    CoreConfig other = cfg;
    other.num_slots = 2;
    MainMemory mem2;
    MultithreadedProcessor wrong(w.program, mem2, other);
    EXPECT_THROW(wrong.restoreCheckpoint(ckpt),
                 std::runtime_error);
}

TEST(Checkpoint, RejectsTruncatedStream)
{
    MatmulParams mp;
    mp.n = 4;
    const Workload w = makeMatmul(mp);
    CoreConfig cfg;
    cfg.max_cycles = 100'000;

    MainMemory mem;
    initMemory(w, mem);
    MultithreadedProcessor cpu(w.program, mem, cfg);
    cpu.runUntil(100);
    std::stringstream ckpt;
    cpu.saveCheckpoint(ckpt);
    const std::string bytes = ckpt.str();

    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    MainMemory mem2;
    MultithreadedProcessor fresh(w.program, mem2, cfg);
    EXPECT_THROW(fresh.restoreCheckpoint(cut),
                 std::runtime_error);

    std::stringstream garbage("not a checkpoint at all");
    MainMemory mem3;
    MultithreadedProcessor fresh2(w.program, mem3, cfg);
    EXPECT_THROW(fresh2.restoreCheckpoint(garbage),
                 std::runtime_error);
}

TEST(Checkpoint, ManyCoreMachineResumesBitIdentically)
{
    // The whole machine — 3 cores coupled through the interconnect
    // — snapshotted mid-run and resumed into a fresh machine must
    // reproduce the uninterrupted run's stats and every core's
    // memory (test_manycore covers the register file).
    MatmulParams mp;
    mp.n = 6;
    const Workload w = makeMatmul(mp);
    MachineConfig cfg;
    cfg.num_cores = 3;
    cfg.core.max_cycles = 500'000;
    cfg.core.remote.base = w.program.data_base;
    cfg.core.remote.size =
        static_cast<Addr>(w.program.data.size());
    const auto init = [&w](int, MainMemory &mem) {
        if (w.init)
            w.init(mem);
    };

    ManyCoreMachine ref(w.program, cfg, init);
    const MachineStats sr = ref.run();
    ASSERT_TRUE(sr.finished);
    ASSERT_GT(sr.cycles, 1000u);

    ManyCoreMachine a(w.program, cfg, init);
    a.runUntil(1000);
    std::stringstream ckpt;
    a.saveCheckpoint(ckpt);

    ManyCoreMachine b(w.program, cfg);  // no init: all from ckpt
    b.restoreCheckpoint(ckpt);
    const MachineStats sg = b.run(2);   // finish in parallel
    EXPECT_EQ(sr.cycles, sg.cycles);
    EXPECT_EQ(sr.finished, sg.finished);
    ASSERT_EQ(sr.cores.size(), sg.cores.size());
    for (std::size_t c = 0; c < sr.cores.size(); ++c) {
        expectSameStats(sr.cores[c], sg.cores[c],
                        "machine core " + std::to_string(c));
        const Addr base = w.program.data_base;
        const Addr end =
            base + static_cast<Addr>(w.program.data.size());
        for (Addr addr = base; addr < end; addr += 4) {
            ASSERT_EQ(ref.memory(static_cast<int>(c)).read32(addr),
                      b.memory(static_cast<int>(c)).read32(addr))
                << "core " << c << " addr " << addr;
        }
        std::string why;
        EXPECT_TRUE(w.check(b.memory(static_cast<int>(c)), &why))
            << "core " << c << ": " << why;
    }

    // A machine of a different shape must refuse the checkpoint.
    MachineConfig other = cfg;
    other.num_cores = 2;
    ManyCoreMachine wrong(w.program, other, init);
    std::stringstream in(ckpt.str());
    EXPECT_THROW(wrong.restoreCheckpoint(in), std::runtime_error);
}

TEST(Checkpoint, FuzzedProgramsResumeBitIdentically)
{
    // >= 200 generated programs, each snapshotted at a
    // pseudo-random cycle under a seed-dependent machine shape.
    constexpr int kPrograms = 220;
    int checked = 0;
    for (int seed = 1; seed <= kPrograms; ++seed) {
        fuzz::GenOptions opts;
        opts.seed = static_cast<std::uint64_t>(seed);
        opts.max_top_units = 6;
        const fuzz::GenProgram gp = fuzz::generate(opts);
        const Program prog = assemble(gp.render());

        CoreConfig cfg;
        cfg.max_cycles = 200'000;
        cfg.num_slots = (seed % 3 == 0) ? 2 : 4;
        cfg.width = (seed % 4 == 0) ? 2 : 1;
        cfg.standby_enabled = seed % 5 != 0;
        if (seed % 7 == 0)
            cfg.rotation_mode = RotationMode::Explicit;

        // Pick the snapshot cycle from the run's actual length so
        // it always lands mid-run (deterministic per seed).
        MainMemory probe_mem;
        prog.loadInto(probe_mem);
        MultithreadedProcessor probe(prog, probe_mem, cfg);
        const RunStats ps = probe.run();
        ASSERT_TRUE(ps.finished)
            << "fuzz seed " << seed << " did not finish";
        if (ps.cycles < 4)
            continue;           // too short to split meaningfully
        const Cycle at =
            1 + (static_cast<Cycle>(seed) * 2654435761ull) %
                    (ps.cycles - 2);

        checkCheckpointExact(prog, cfg, at,
                             "fuzz seed " +
                                 std::to_string(seed) +
                                 " @" + std::to_string(at));
        ++checked;
    }
    // The generator occasionally emits near-empty programs; most
    // must still exercise a real split.
    EXPECT_GE(checked, 200);
}
