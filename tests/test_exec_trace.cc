/**
 * @file
 * SMTTRC1 execution-trace format tests: round-trip fidelity, the
 * fetch-block derived view, and rejection of truncated/garbage
 * streams (mirroring the SMTEVT1 tests in test_obs.cc).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>

#include "trace/exec_trace.hh"
#include "trace/spsc.hh"

using namespace smtsim;

namespace
{

ExecTrace
sampleTrace()
{
    ExecTrace trace;
    trace.entry = 0x1000;
    trace.threads.resize(2);
    trace.threads[0].branches = {{0x1008, 0x1020}, {0x1028, 0x102c}};
    trace.threads[0].mems = {{0x1004, 0x20000}, {0x1024, 0x20008}};
    trace.threads[0].queue_pushes = {{0x1010, 0x123456789abcull}};
    trace.threads[0].insns = 17;
    trace.threads[1].branches = {{0x1040, 0x1000}};
    trace.threads[1].insns = 5;
    return trace;
}

} // namespace

TEST(ExecTrace, RoundTripsThroughSmttrc1)
{
    const ExecTrace trace = sampleTrace();
    std::stringstream ss;
    trace.save(ss);
    const ExecTrace loaded = ExecTrace::load(ss);
    EXPECT_EQ(loaded, trace);
}

TEST(ExecTrace, EmptyTraceRoundTrips)
{
    ExecTrace trace;
    trace.entry = 0x1000;
    trace.threads.resize(1);
    std::stringstream ss;
    trace.save(ss);
    EXPECT_EQ(ExecTrace::load(ss), trace);
}

TEST(ExecTrace, RejectsGarbage)
{
    std::stringstream bad("this is not an execution trace at all");
    EXPECT_THROW(ExecTrace::load(bad), std::runtime_error);
}

TEST(ExecTrace, RejectsEventStreamMagic)
{
    // An SMTEVT1 event stream must not parse as an execution trace.
    std::stringstream ss;
    const char magic[8] = {'S', 'M', 'T', 'E', 'V', 'T', '1', 0};
    ss.write(magic, 8);
    ss.write("\0\0\0\0\0\0\0\0", 8);
    EXPECT_THROW(ExecTrace::load(ss), std::runtime_error);
}

TEST(ExecTrace, RejectsTruncation)
{
    std::stringstream ss;
    sampleTrace().save(ss);
    std::string bytes = ss.str();
    // Chop off a partial tail record: every prefix must be rejected,
    // never misparsed.
    bytes.resize(bytes.size() - 3);
    std::stringstream cut(bytes);
    EXPECT_THROW(ExecTrace::load(cut), std::runtime_error);
}

TEST(ExecTrace, RejectsImplausibleCounts)
{
    std::stringstream ss;
    sampleTrace().save(ss);
    std::string bytes = ss.str();
    // Overwrite the thread count (u32 after the u64 magic + u32
    // entry) with an absurd value.
    bytes[12] = static_cast<char>(0xff);
    bytes[13] = static_cast<char>(0xff);
    bytes[14] = static_cast<char>(0xff);
    bytes[15] = static_cast<char>(0xff);
    std::stringstream huge(bytes);
    EXPECT_THROW(ExecTrace::load(huge), std::runtime_error);
}

TEST(ExecTrace, FetchBlockPcsDerivesFromBranches)
{
    ExecTrace trace;
    trace.entry = 0x1000;
    trace.threads.resize(1);
    // Untaken conditional (next == pc+4), then a taken branch.
    trace.threads[0].branches = {{0x1004, 0x1008},
                                 {0x100c, 0x1040}};
    const std::vector<Addr> blocks = trace.fetchBlockPcs(0);
    const std::vector<Addr> want = {0x1000, 0x1040};
    EXPECT_EQ(blocks, want);
}

TEST(ExecTrace, StreamDrainMatchesDirectAssembly)
{
    const ExecTrace want = sampleTrace();

    SpscRing<StreamRec> ring(8);
    ExecTrace got;
    got.entry = want.entry;
    got.threads.resize(want.threads.size());
    for (std::size_t i = 0; i < want.threads.size(); ++i)
        got.threads[i].insns = want.threads[i].insns;

    std::thread producer([&] {
        StreamingRecorder rec(ring);
        for (std::size_t tid = 0; tid < want.threads.size();
             ++tid) {
            const ThreadTrace &tt = want.threads[tid];
            for (const BranchRec &b : tt.branches)
                rec.onBranch(static_cast<int>(tid), b.pc, b.next);
            for (const MemRec &m : tt.mems)
                rec.onMem(static_cast<int>(tid), m.pc, m.addr);
            for (const QueueRec &q : tt.queue_pushes)
                rec.onQueuePush(static_cast<int>(tid), q.pc,
                                q.value);
        }
        ring.close();
    });
    drainStream(ring, got);
    producer.join();

    EXPECT_EQ(got, want);
}
