/**
 * @file
 * smtsim::fuzz self-tests: generator determinism and invariants, a
 * small differential sweep, the unit-tree shrinker, repro file
 * round-trips, the Program -> assembly serializer, and replay of the
 * checked-in regression corpus (FUZZ_CORPUS_DIR).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asmr/assembler.hh"
#include "asmr/disasm.hh"
#include "analysis/lint.hh"
#include "fuzz/generate.hh"
#include "fuzz/lintoracle.hh"
#include "fuzz/oracle.hh"
#include "fuzz/repro.hh"
#include "fuzz/shrink.hh"

using namespace smtsim;
using namespace smtsim::fuzz;

namespace
{

/** Small budgets: generated programs finish in well under this. */
OracleBudget
testBudget()
{
    OracleBudget b;
    b.interp_max_steps = 2'000'000;
    b.max_cycles = 2'000'000;
    return b;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

TEST(FuzzGenerate, SameSeedSameBytes)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        GenOptions opts;
        opts.seed = seed;
        const GenProgram a = generate(opts);
        const GenProgram b = generate(opts);
        EXPECT_EQ(a.render(), b.render());
        EXPECT_EQ(a.countInsns(), b.countInsns());
    }
}

TEST(FuzzGenerate, DistinctSeedsDistinctPrograms)
{
    GenOptions a, b;
    a.seed = 7;
    b.seed = 8;
    EXPECT_NE(generate(a).render(), generate(b).render());
}

TEST(FuzzGenerate, SeedsAssembleAndTerminate)
{
    // Every generated program must assemble and run to completion
    // on the reference interpreter at 1 and kMaxFuzzSlots threads.
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        GenOptions opts;
        opts.seed = seed * 0x2545f4914f6cdd1dull + 11;
        const GenProgram prog = generate(opts);
        const Program image = assemble(prog.render());
        for (int slots : {1, kMaxFuzzSlots}) {
            RunConfig rc;
            rc.engine = Engine::Interp;
            rc.slots = slots;
            const EngineState st =
                runEngine(image, rc, testBudget());
            EXPECT_FALSE(st.trapped)
                << "seed " << opts.seed << " slots " << slots
                << ": " << st.trap;
            EXPECT_TRUE(st.finished)
                << "seed " << opts.seed << " slots " << slots;
        }
    }
}

TEST(FuzzOracle, SmallDifferentialSweepIsClean)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        GenOptions opts;
        opts.seed = seed * 0x9e3779b97f4a7c15ull + 3;
        const GenProgram prog = generate(opts);
        const Program image = assemble(prog.render());
        const auto div =
            checkProgram(image, prog.features, testBudget());
        EXPECT_FALSE(div.has_value())
            << "seed " << opts.seed << ": " << div->cfg.name()
            << " vs " << div->ref.name() << ": " << div->detail;
    }
}

TEST(FuzzOracle, GridRespectsFeatureExclusions)
{
    GenFeatures queues;
    queues.int_queues = true;
    for (const auto &[ref, cfg] : buildGrid(queues)) {
        EXPECT_NE(cfg.engine, Engine::Baseline)
            << "baseline must be skipped for queue programs";
        EXPECT_FALSE(cfg.remote)
            << "remote rebinding breaks the slot-indexed ring";
    }

    GenFeatures plain;
    bool saw_baseline = false, saw_remote = false;
    for (const auto &[ref, cfg] : buildGrid(plain)) {
        saw_baseline |= cfg.engine == Engine::Baseline;
        saw_remote |= cfg.remote;
    }
    EXPECT_TRUE(saw_baseline);
    EXPECT_TRUE(saw_remote);
}

TEST(LintOracle, SmallCellHasNoMismatches)
{
    LintOracleOptions opts;
    opts.runs = 12;
    opts.seed = 7;
    opts.quiet = true;
    const LintOracleStats stats = runLintOracle(opts);
    EXPECT_EQ(stats.clean_runs, 12);
    EXPECT_EQ(stats.injected_runs, 12);
    EXPECT_TRUE(stats.ok())
        << stats.false_positives << " fp, " << stats.clean_hangs
        << " hang, " << stats.missed_bugs << " miss, "
        << stats.phantom_bugs << " phantom";
}

TEST(LintOracle, EveryBugClassIsFlaggedAndHangs)
{
    for (const BugClass c :
         {BugClass::WaitCycle, BugClass::RateStarve,
          BugClass::RateOverrun, BugClass::SpinNoStore}) {
        for (std::uint64_t seed : {1ull, 9ull, 23ull}) {
            const Program p =
                assemble(renderBugProgram(c, seed));
            const analysis::LintReport lr = analysis::lint(p);
            bool flagged = false;
            for (const analysis::Diagnostic &d : lr.diags) {
                flagged = flagged ||
                          std::string(d.id) == bugClassDiagnostic(c);
            }
            EXPECT_TRUE(flagged)
                << bugClassName(c) << " seed " << seed
                << " not flagged as " << bugClassDiagnostic(c)
                << ":\n"
                << analysis::formatText(lr, "<bug>");

            RunConfig rc;
            rc.engine = Engine::Interp;
            rc.slots = 4;
            OracleBudget budget;
            budget.interp_max_steps = 200'000;
            budget.max_cycles = 200'000;
            const EngineState st = runEngine(p, rc, budget);
            EXPECT_FALSE(st.finished)
                << bugClassName(c) << " seed " << seed
                << " finished: the injected bug is not a bug";
        }
    }
}

TEST(LintOracle, RenderingIsDeterministic)
{
    for (const BugClass c :
         {BugClass::WaitCycle, BugClass::RateStarve,
          BugClass::RateOverrun, BugClass::SpinNoStore}) {
        EXPECT_EQ(renderBugProgram(c, 42),
                  renderBugProgram(c, 42));
    }
}

TEST(FuzzShrink, MinimizesWhilePreservingPredicate)
{
    GenOptions opts;
    opts.seed = 12345;
    opts.allow_queues = false;
    const GenProgram prog = generate(opts);
    ASSERT_NE(prog.render().find("sll r7, r5, 8"),
              std::string::npos);

    // Semantic predicate exercising the tree edits: "program still
    // contains the tid-scaling shift". Assembles every candidate so
    // malformed output would surface as a throw (= not failing).
    const FailFn fails = [](const GenProgram &cand) {
        const std::string text = cand.render();
        assemble(text);
        return text.find("sll r7, r5, 8") != std::string::npos;
    };

    ShrinkStats stats;
    const GenProgram small = shrink(prog, fails, &stats);
    EXPECT_TRUE(fails(small));
    EXPECT_LE(small.countInsns(), prog.countInsns());
    EXPECT_GT(stats.attempts, 0);
    // Everything but the init units should shrink away.
    EXPECT_LE(small.countInsns(), 16)
        << "shrinker left:\n"
        << small.render();
}

TEST(FuzzRepro, RunConfigRoundTrip)
{
    RunConfig rc;
    rc.engine = Engine::Core;
    rc.slots = 8;
    rc.fast_forward = false;
    rc.cache = true;
    rc.standby = false;
    rc.width = 2;
    rc.explicit_rot = true;
    rc.interval = 16;
    rc.remote = true;
    const RunConfig back = parseRunConfig(formatRunConfig(rc));
    EXPECT_EQ(formatRunConfig(back), formatRunConfig(rc));
    EXPECT_EQ(back.name(), rc.name());
}

TEST(FuzzRepro, FormatParseReplayRoundTrip)
{
    GenOptions opts;
    opts.seed = 99;
    const GenProgram prog = generate(opts);

    Divergence div;
    div.ref.engine = Engine::Interp;
    div.ref.slots = 4;
    div.cfg.engine = Engine::Core;
    div.cfg.slots = 4;
    div.cfg.cache = true;
    div.detail = "synthetic";

    const std::string text = formatRepro(prog, div);
    const Repro repro = parseRepro(text);
    EXPECT_EQ(repro.ref.name(), div.ref.name());
    EXPECT_EQ(repro.cfg.name(), div.cfg.name());
    EXPECT_EQ(repro.mask_queue_regs, prog.features.usesQueues());

    // The engines agree on this program, so the replay is clean.
    EXPECT_EQ(replayRepro(repro, testBudget()), "");
}

TEST(FuzzCorpus, CheckedInReprosStayFixed)
{
    const std::filesystem::path dir = FUZZ_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    int count = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".s")
            continue;
        ++count;
        const Repro repro = parseRepro(slurp(entry.path()));
        EXPECT_EQ(replayRepro(repro, testBudget()), "")
            << entry.path() << " diverges again (regression)";
    }
    EXPECT_GE(count, 3) << "regression corpus went missing";
}

TEST(Disasm, GeneratedProgramsRoundTrip)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        GenOptions opts;
        opts.seed = seed * 1099511628211ull + 5;
        const Program a = assemble(generate(opts).render());
        const Program b = assemble(programToAsm(a));
        EXPECT_EQ(a.text, b.text) << "seed " << opts.seed;
        EXPECT_EQ(a.data, b.data) << "seed " << opts.seed;
        EXPECT_EQ(a.entry, b.entry) << "seed " << opts.seed;
        EXPECT_EQ(a.text_base, b.text_base);
        EXPECT_EQ(a.data_base, b.data_base);
    }
}

TEST(Disasm, SynthesizesLabelsForBranchTargets)
{
    const Program prog = assemble(R"(
        .text
main:   addi r8, r0, 3
loop:   addi r8, r8, -1
        bgtz r8, loop
        beq r0, r0, done
        addi r9, r0, 1
done:   halt
        .data
v:      .word 1, 2, 3
)");
    const std::string text = programToAsm(prog);
    const Program back = assemble(text);
    EXPECT_EQ(prog.text, back.text);
    EXPECT_EQ(prog.data, back.data);
    EXPECT_EQ(prog.entry, back.entry);
}
