#include <sstream>

#include <gtest/gtest.h>

#include "test_common.hh"

using namespace smtsim;
using namespace smtsim::test;

// ----------------------------------------------------------------
// Instruction-window hazards with width > 1
// ----------------------------------------------------------------

TEST(CoreWindow, WarHazardInWindowRespected)
{
    // add r2 <- r1 (reads r1); addi r1 <- ... (writes r1).
    // With width 4 both sit in the window; the writer must not
    // clobber r1 before the reader captures it.
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.width = 4;
    runCoreAsm(R"(
main:   li   r1, 10
        nop
        nop
        nop
        add  r2, r1, r0
        addi r1, r0, 99
        la   r3, out
        sw   r2, 0(r3)
        sw   r1, 4(r3)
        halt
        .data
out:    .word 0, 0
)",
               cfg, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 10u);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 4), 99u);
}

TEST(CoreWindow, WawHazardInWindowRespected)
{
    // Long-latency mul writes r1, then addi overwrites it; the
    // final value must be the addi's even though the mul completes
    // later.
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.width = 4;
    runCoreAsm(R"(
main:   li   r4, 7
        li   r5, 6
        mul  r1, r4, r5
        addi r1, r0, 5
        la   r3, out
        sw   r1, 0(r3)
        halt
        .data
out:    .word 0
)",
               cfg, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 5u);
}

TEST(CoreWindow, MemOrderWithinWindow)
{
    // Store then load of the same address inside one window: the
    // load must observe the store.
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.width = 4;
    cfg.fus.load_store = 2;
    runCoreAsm(R"(
main:   la   r1, buf
        li   r2, 123
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        addi r3, r3, 1
        sw   r3, 4(r1)
        halt
        .data
buf:    .word 0, 0
)",
               cfg, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 4), 124u);
}

// ----------------------------------------------------------------
// Mode and priority plumbing
// ----------------------------------------------------------------

TEST(CoreModes, SetrmodeSwitchesAtRuntime)
{
    // A program that switches to explicit mode and back; priority
    // special ops still work afterwards.
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 2;
    const RunStats s = runCoreAsm(R"(
main:   setrmode explicit, 0
        fastfork
        tid  r1
        la   r2, out
        pstw r1, 0(r2)
        chgpri
        setrmode implicit, 4
        halt
        .data
out:    .word 0
)",
                                  cfg, &mem);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 1u);    // last = tid 1
}

TEST(CoreModes, RotationIntervalFromInstruction)
{
    // setrmode implicit, N reprograms the interval; the run must
    // still complete and stay deterministic.
    CoreConfig cfg;
    cfg.num_slots = 4;
    const std::string prog = R"(
main:   setrmode implicit, 2
        li   r1, 32
        fastfork
loop:   addi r1, r1, -1
        add  r2, r2, r1
        bgtz r1, loop
        halt
)";
    const RunStats a = runCoreAsm(prog, cfg);
    const RunStats b = runCoreAsm(prog, cfg);
    EXPECT_TRUE(a.finished);
    EXPECT_EQ(a.cycles, b.cycles);
}

// ----------------------------------------------------------------
// Statistics plumbing
// ----------------------------------------------------------------

TEST(CoreStats, WritebackConflictsDetected)
{
    // A multiply (result 6) issued right before a chain of ALU ops
    // lines up same-cycle write-backs to the same bank eventually.
    CoreConfig cfg;
    cfg.num_slots = 1;
    const RunStats s = runCoreAsm(R"(
main:   li   r4, 3
        li   r5, 9
        mul  r1, r4, r5
        sll  r2, r4, 1
        add  r3, r4, r5
        add  r6, r5, r5
        add  r7, r4, r4
        add  r8, r5, r4
        halt
)",
                                  cfg);
    EXPECT_TRUE(s.finished);
    // The statistic is advisory; just ensure it is wired (>= 0 and
    // bounded by instruction count).
    EXPECT_LE(s.writeback_conflicts, s.instructions);
}

TEST(CoreStats, PerContextInstructionCountsSumUp)
{
    Machine m(R"(
main:   fastfork
        tid  r1
        addi r2, r1, 1
        halt
)");
    CoreConfig cfg;
    cfg.num_slots = 4;
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    const RunStats s = cpu.run();
    EXPECT_TRUE(s.finished);
    // fastfork + 3 insns on slot 0; tid/addi/halt on the others.
    EXPECT_EQ(s.instructions, 4u + 3u * 3u);
}

TEST(CoreDebug, DumpStateIsWellFormed)
{
    Machine m(R"(
main:   li   r1, 4
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)");
    CoreConfig cfg;
    cfg.num_slots = 2;
    cfg.max_cycles = 10;    // stop mid-flight
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    cpu.run();
    std::ostringstream oss;
    cpu.dumpState(oss);
    const std::string dump = oss.str();
    EXPECT_NE(dump.find("ring:"), std::string::npos);
    EXPECT_NE(dump.find("slot 0:"), std::string::npos);
    EXPECT_NE(dump.find("ctx 0:"), std::string::npos);
}

// ----------------------------------------------------------------
// Fetch engine corner cases
// ----------------------------------------------------------------

TEST(CoreFetch, RewindDeliversEveryInstruction)
{
    // A long straight-line block taxes the fetch rewind path (the
    // queue cannot absorb a full block while draining); every
    // instruction must still execute exactly once.
    std::string body;
    for (int i = 0; i < 64; ++i) {
        body += "        addi r" + std::to_string(1 + i % 20) +
                ", r0, " + std::to_string(i) + "\n";
    }
    Machine m("main:\n" + body + "        halt\n");
    CoreConfig cfg;
    cfg.num_slots = 1;
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    const RunStats s = cpu.run();
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.instructions, 65u);
}

TEST(CoreFetch, ManySlotsShareFetchWithoutLoss)
{
    // Eight threads of straight-line code: instruction counts must
    // be exact despite heavy fetch-unit multiplexing.
    std::string body;
    for (int i = 0; i < 24; ++i)
        body += "        addi r" + std::to_string(1 + i % 20) +
                ", r0, 1\n";
    Machine m("main:   fastfork\n" + body + "        halt\n");
    CoreConfig cfg;
    cfg.num_slots = 8;
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    const RunStats s = cpu.run();
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.instructions, 1u + 8u * 25u);
}

TEST(CoreFetch, TightLoopAtEndOfText)
{
    // The last instructions of the text segment loop back; fetch
    // must stop cleanly at the segment end (no phantom words).
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 1;
    const RunStats s = runCoreAsm(R"(
main:   li   r1, 6
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)",
                                  cfg, &mem);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.instructions, 2u + 2u * 6u + 1u);
}

TEST(CoreDebug, PipeTraceStreamsEvents)
{
    Machine m(R"(
main:   li   r1, 2
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)");
    CoreConfig cfg;
    cfg.num_slots = 1;
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    std::ostringstream trace;
    cpu.setPipeTrace(&trace);
    ASSERT_TRUE(cpu.run().finished);
    const std::string t = trace.str();
    EXPECT_NE(t.find("issue"), std::string::npos);
    EXPECT_NE(t.find("grant"), std::string::npos);
    EXPECT_NE(t.find("branch"), std::string::npos);
    // The entry thread binds in the constructor, before the trace
    // stream can be attached; forked threads do show bind events.
    // Disabled by default: a second run emits nothing new.
    Machine m2("main: halt\n");
    MultithreadedProcessor quiet(m2.prog, m2.mem, cfg);
    ASSERT_TRUE(quiet.run().finished);
}

TEST(CoreQueues, IntAndFpMappingsCoexist)
{
    // qen and qenf map both register files onto the same ring
    // link; values interleave in FIFO order.
    MainMemory mem;
    CoreConfig cfg;
    cfg.num_slots = 2;
    cfg.rotation_mode = RotationMode::Explicit;
    const RunStats s = runCoreAsm(R"(
main:   setrmode explicit, 0
        qen  r20, r21
        qenf f20, f21
        la   r9, vals
        lf   f5, 0(r9)
        fastfork
        tid  r1
        bne  r1, r0, recv
        addi r21, r0, 7         # int -> queue
        fmov f21, f5            # fp  -> queue (after the int)
        halt
recv:   add  r2, r20, r0        # pop int
        fmov f2, f20            # pop fp
        la   r3, out
        sw   r2, 0(r3)
        sf   f2, 8(r3)
        halt
        .data
        .align 8
vals:   .float 2.5
out:    .word 0, 0
        .float 0.0
)",
                                  cfg, &mem);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 8), 7u);
    EXPECT_DOUBLE_EQ(mem.readDouble(kDefaultDataBase + 16), 2.5);
}

TEST(CoreConfigValidation, BadShapesRejected)
{
    Machine m("main: halt\n");
    {
        CoreConfig cfg;
        cfg.num_slots = 0;
        EXPECT_THROW(MultithreadedProcessor cpu(m.prog, m.mem, cfg),
                     PanicError);
    }
    {
        CoreConfig cfg;
        cfg.num_slots = 4;
        cfg.num_frames = 2;     // fewer frames than slots
        EXPECT_THROW(MultithreadedProcessor cpu(m.prog, m.mem, cfg),
                     PanicError);
    }
    {
        CoreConfig cfg;
        cfg.width = 0;
        EXPECT_THROW(MultithreadedProcessor cpu(m.prog, m.mem, cfg),
                     PanicError);
    }
}
