#include <cmath>

#include <gtest/gtest.h>

#include "isa/dataop.hh"
#include "isa/semantics.hh"

using namespace smtsim;

namespace
{

Insn
rr(Op op, std::int32_t imm = 0)
{
    Insn insn;
    insn.op = op;
    insn.imm = imm;
    return insn;
}

} // namespace

TEST(IntOps, Arithmetic)
{
    EXPECT_EQ(execIntOp(rr(Op::ADD), 3, 4), 7u);
    EXPECT_EQ(execIntOp(rr(Op::SUB), 3, 4), 0xffffffffu);
    EXPECT_EQ(execIntOp(rr(Op::ADD), 0xffffffffu, 1), 0u); // wraps
}

TEST(IntOps, Logical)
{
    EXPECT_EQ(execIntOp(rr(Op::AND_), 0xf0f0u, 0xff00u), 0xf000u);
    EXPECT_EQ(execIntOp(rr(Op::OR_), 0xf0f0u, 0x0f0fu), 0xffffu);
    EXPECT_EQ(execIntOp(rr(Op::XOR_), 0xffu, 0x0fu), 0xf0u);
    EXPECT_EQ(execIntOp(rr(Op::NOR_), 0, 0), 0xffffffffu);
}

TEST(IntOps, Compare)
{
    EXPECT_EQ(execIntOp(rr(Op::SLT), 0xffffffffu, 0), 1u); // -1 < 0
    EXPECT_EQ(execIntOp(rr(Op::SLTU), 0xffffffffu, 0), 0u);
    EXPECT_EQ(execIntOp(rr(Op::SLT), 1, 2), 1u);
    EXPECT_EQ(execIntOp(rr(Op::SLT), 2, 2), 0u);
}

TEST(IntOps, Immediates)
{
    EXPECT_EQ(execIntOp(rr(Op::ADDI, -5), 3, 0), 0xfffffffeu);
    EXPECT_EQ(execIntOp(rr(Op::SLTI, 10), 5, 0), 1u);
    EXPECT_EQ(execIntOp(rr(Op::ANDI, 0xff), 0x1234, 0), 0x34u);
    EXPECT_EQ(execIntOp(rr(Op::ORI, 0xff), 0x1200, 0), 0x12ffu);
    EXPECT_EQ(execIntOp(rr(Op::XORI, 0xff), 0xff, 0), 0u);
    EXPECT_EQ(execIntOp(rr(Op::LUI, 0x1234), 0, 0), 0x12340000u);
}

TEST(IntOps, NegativeImmediateLogicalZeroExtends)
{
    // ANDI with imm 0xffff keeps the low 16 bits only.
    Insn insn = rr(Op::ANDI, static_cast<std::int32_t>(0xffff));
    EXPECT_EQ(execIntOp(insn, 0xdeadbeefu, 0), 0xbeefu);
}

TEST(IntOps, Shifts)
{
    EXPECT_EQ(execIntOp(rr(Op::SLL, 4), 1, 0), 16u);
    EXPECT_EQ(execIntOp(rr(Op::SRL, 4), 0x80000000u, 0),
              0x08000000u);
    EXPECT_EQ(execIntOp(rr(Op::SRA, 4), 0x80000000u, 0),
              0xf8000000u);
    EXPECT_EQ(execIntOp(rr(Op::SLLV), 1, 5), 32u);
    EXPECT_EQ(execIntOp(rr(Op::SRLV), 0x100u, 4), 0x10u);
    EXPECT_EQ(execIntOp(rr(Op::SRAV), 0x80000000u, 31),
              0xffffffffu);
}

TEST(IntOps, MulDivRem)
{
    EXPECT_EQ(execIntOp(rr(Op::MUL), 7, 6), 42u);
    EXPECT_EQ(execIntOp(rr(Op::MUL), 0xffffffffu, 2),
              0xfffffffeu);      // -1 * 2 = -2
    EXPECT_EQ(execIntOp(rr(Op::DIVQ), 42, 5), 8u);
    EXPECT_EQ(execIntOp(rr(Op::REMQ), 42, 5), 2u);
    const std::uint32_t m1 = 0xffffffffu;
    EXPECT_EQ(execIntOp(rr(Op::DIVQ), m1, 2), 0u);  // -1 / 2 = 0
}

TEST(IntOps, DivisionEdgeCases)
{
    // Architecturally defined: n/0 = 0, n%0 = 0, INT_MIN/-1 wraps.
    EXPECT_EQ(execIntOp(rr(Op::DIVQ), 5, 0), 0u);
    EXPECT_EQ(execIntOp(rr(Op::REMQ), 5, 0), 0u);
    EXPECT_EQ(execIntOp(rr(Op::DIVQ), 0x80000000u, 0xffffffffu),
              0x80000000u);
    EXPECT_EQ(execIntOp(rr(Op::REMQ), 0x80000000u, 0xffffffffu),
              0u);
}

TEST(FpOps, Arithmetic)
{
    EXPECT_DOUBLE_EQ(execFpOp(Op::FADD, 1.5, 2.25), 3.75);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FSUB, 1.0, 4.0), -3.0);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FMUL, 3.0, -2.0), -6.0);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FDIV, 1.0, 4.0), 0.25);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FSQRT, 9.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FABS, -2.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FNEG, -2.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(execFpOp(Op::FMOV, 5.5, 0.0), 5.5);
}

TEST(FpOps, SpecialValues)
{
    EXPECT_TRUE(std::isinf(execFpOp(Op::FDIV, 1.0, 0.0)));
    EXPECT_TRUE(std::isnan(execFpOp(Op::FDIV, 0.0, 0.0)));
    EXPECT_TRUE(std::isnan(execFpOp(Op::FSQRT, -1.0, 0.0)));
}

TEST(FpOps, Compare)
{
    EXPECT_EQ(execFpToIntOp(Op::FCMPLT, 1.0, 2.0), 1u);
    EXPECT_EQ(execFpToIntOp(Op::FCMPLT, 2.0, 2.0), 0u);
    EXPECT_EQ(execFpToIntOp(Op::FCMPLE, 2.0, 2.0), 1u);
    EXPECT_EQ(execFpToIntOp(Op::FCMPEQ, 2.0, 2.0), 1u);
    EXPECT_EQ(execFpToIntOp(Op::FCMPEQ, 2.0, 2.5), 0u);
    // NaN compares false under every predicate.
    const double nan = std::nan("");
    EXPECT_EQ(execFpToIntOp(Op::FCMPLT, nan, 1.0), 0u);
    EXPECT_EQ(execFpToIntOp(Op::FCMPEQ, nan, nan), 0u);
}

TEST(FpOps, Conversions)
{
    EXPECT_EQ(execFpToIntOp(Op::FTOI, 3.99, 0.0), 3u);
    EXPECT_EQ(execFpToIntOp(Op::FTOI, -3.99, 0.0),
              static_cast<std::uint32_t>(-3));
}

TEST(Branches, Predicates)
{
    EXPECT_TRUE(evalBranch(Op::BEQ, 5, 5));
    EXPECT_FALSE(evalBranch(Op::BEQ, 5, 6));
    EXPECT_TRUE(evalBranch(Op::BNE, 5, 6));
    EXPECT_TRUE(evalBranch(Op::BLEZ, 0, 0));
    EXPECT_TRUE(evalBranch(Op::BLEZ, 0xffffffffu, 0));
    EXPECT_FALSE(evalBranch(Op::BLEZ, 1, 0));
    EXPECT_TRUE(evalBranch(Op::BGTZ, 1, 0));
    EXPECT_FALSE(evalBranch(Op::BGTZ, 0xffffffffu, 0));
    EXPECT_TRUE(evalBranch(Op::BLTZ, 0x80000000u, 0));
    EXPECT_TRUE(evalBranch(Op::BGEZ, 0, 0));
    EXPECT_TRUE(evalBranch(Op::J, 0, 0));
    EXPECT_TRUE(evalBranch(Op::JR, 0, 0));
}

TEST(DataOp, DispatchesByFormat)
{
    Insn add;
    add.op = Op::ADD;
    OperandValues ops;
    ops.rs_i = 2;
    ops.rt_i = 3;
    const DataResult r = execDataOp(add, ops);
    EXPECT_FALSE(r.is_fp);
    EXPECT_EQ(r.ival, 5u);

    Insn fmul;
    fmul.op = Op::FMUL;
    OperandValues fops;
    fops.rs_f = 1.5;
    fops.rt_f = 2.0;
    const DataResult fr = execDataOp(fmul, fops);
    EXPECT_TRUE(fr.is_fp);
    EXPECT_DOUBLE_EQ(fr.fval, 3.0);

    Insn itof;
    itof.op = Op::ITOF;
    OperandValues iops;
    iops.rs_i = 0xffffffffu;    // -1 as signed
    const DataResult ir = execDataOp(itof, iops);
    EXPECT_TRUE(ir.is_fp);
    EXPECT_DOUBLE_EQ(ir.fval, -1.0);

    Insn fcmp;
    fcmp.op = Op::FCMPLT;
    OperandValues cops;
    cops.rs_f = 1.0;
    cops.rt_f = 2.0;
    const DataResult cr = execDataOp(fcmp, cops);
    EXPECT_FALSE(cr.is_fp);
    EXPECT_EQ(cr.ival, 1u);
}
