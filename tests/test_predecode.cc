/**
 * @file
 * PredecodedText must be a pure cache of Program::insnAt: the same
 * decoded instruction at every text address, the same fatal on
 * addresses outside (or misaligned within) the text segment.
 */

#include <gtest/gtest.h>

#include "asmr/assembler.hh"
#include "base/logging.hh"
#include "harness/runner.hh"
#include "trace/synth.hh"

using namespace smtsim;

namespace
{

std::vector<Program>
samplePrograms()
{
    std::vector<Program> progs;

    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    progs.push_back(makeRayTrace(rp).program);
    progs.push_back(makeLivermore1(Lk1Params{}).program);
    progs.push_back(makeListWalk(ListWalkParams{}).program);
    progs.push_back(makeMatmul(MatmulParams{}).program);
    progs.push_back(makeBsearch(BsearchParams{}).program);
    progs.push_back(makeRadiosity(RadiosityParams{}).program);
    progs.push_back(makeRecurrence(RecurrenceParams{}).program);

    SynthParams sp;
    sp.seed = 13;
    progs.push_back(makeSyntheticKernel(sp));

    progs.push_back(assemble("main: nop\n      halt\n"));
    return progs;
}

} // namespace

TEST(Predecode, MatchesInsnAtOnEveryTextAddress)
{
    for (const Program &prog : samplePrograms()) {
        const PredecodedText text(prog);
        ASSERT_EQ(text.size(), prog.text.size());
        for (Addr a = prog.text_base; a < prog.textEnd();
             a += kInsnBytes) {
            ASSERT_EQ(text.at(a), prog.insnAt(a))
                << "address " << a;
        }
    }
}

TEST(Predecode, RejectsAddressesOutsideText)
{
    const Program prog = assemble("main: nop\n      halt\n");
    const PredecodedText text(prog);
    EXPECT_THROW(text.at(prog.text_base - kInsnBytes), FatalError);
    EXPECT_THROW(text.at(prog.textEnd()), FatalError);
    EXPECT_THROW(text.at(prog.text_base + 1), FatalError);
    EXPECT_THROW(text.at(0), FatalError);
    EXPECT_THROW(text.at(~Addr{0}), FatalError);
}

TEST(Predecode, EnginesStillAgreeWithTheFunctionalOracle)
{
    // Smoke: the engines now fetch through PredecodedText; the
    // three-way harness checks must still pass.
    MatmulParams mp;
    mp.n = 4;
    const Workload w = makeMatmul(mp);
    const Outcome interp = runInterp(w, 1);
    const Outcome baseline = runBaseline(w);
    CoreConfig cfg;
    cfg.num_slots = 2;
    const Outcome core = runCore(w, cfg);
    EXPECT_TRUE(interp.ok) << interp.error;
    EXPECT_TRUE(baseline.ok) << baseline.error;
    EXPECT_TRUE(core.ok) << core.error;
    EXPECT_EQ(baseline.stats.instructions,
              interp.stats.instructions);
}
