/**
 * @file
 * Tests for the bounded SPSC ring the functional-first pipeline
 * streams trace records through. Built with TSan in CI (the tsan
 * job runs this binary): the stress tests are the data-race check
 * for the acquire/release protocol, not just functional coverage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "trace/spsc.hh"

using smtsim::SpscRing;

TEST(Spsc, CapacityRoundsToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(Spsc, SingleThreadFillDrain)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.push(i));
    ring.close();
    int v = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.pop(v));
        EXPECT_EQ(v, i);
    }
    // Closed and drained: pop reports end-of-stream.
    EXPECT_FALSE(ring.pop(v));
}

TEST(Spsc, ProducerConsumerStressPreservesOrderAndSum)
{
    // Tiny capacity forces constant wraparound and both full-ring
    // (producer) and empty-ring (consumer) blocking.
    SpscRing<std::uint64_t> ring(8);
    constexpr std::uint64_t kCount = 200'000;

    std::uint64_t sum = 0;
    bool ordered = true;
    std::thread consumer([&] {
        std::uint64_t v = 0, expected = 0;
        while (ring.pop(v)) {
            if (v != expected)
                ordered = false;
            ++expected;
            sum += v;
        }
    });

    for (std::uint64_t i = 0; i < kCount; ++i)
        ASSERT_TRUE(ring.push(i));
    ring.close();
    consumer.join();

    EXPECT_TRUE(ordered);
    EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(Spsc, CloseUnblocksWaitingConsumer)
{
    SpscRing<int> ring(4);
    std::thread consumer([&] {
        int v = 0;
        // Blocks on the empty ring until close() releases it.
        EXPECT_FALSE(ring.pop(v));
    });
    ring.close();
    consumer.join();
}

TEST(Spsc, CloseUnblocksWaitingProducer)
{
    SpscRing<int> ring(2);
    ASSERT_TRUE(ring.push(1));
    ASSERT_TRUE(ring.push(2));
    std::thread producer([&] {
        // Ring is full; push blocks until close() fails it.
        EXPECT_FALSE(ring.push(3));
    });
    ring.close();
    producer.join();
    // Records already deposited survive the close.
    int v = 0;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(ring.pop(v));
}

TEST(Spsc, ConsumerDrainsBacklogAfterClose)
{
    SpscRing<int> ring(16);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(ring.push(i));
    ring.close();

    std::vector<int> got;
    int v = 0;
    while (ring.pop(v))
        got.push_back(v);
    std::vector<int> want(10);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(got, want);
}
