/**
 * @file
 * Structured cycle-event layer and smtsim-scope replay model: event
 * encoding round-trips, ring packing, sink formats, the retirement
 * invariant tying the stream to RunStats on both engines, scope
 * view reconstruction with forward/backward stepping, and the
 * full-stream vs post-restore suffix-stream equivalence the CI
 * scope smoke job relies on.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "asmr/assembler.hh"
#include "baseline/baseline.hh"
#include "base/json.hh"
#include "core/processor.hh"
#include "obs/scope.hh"
#include "obs/sinks.hh"
#include "test_common.hh"
#include "workloads/workloads.hh"

using namespace smtsim;
using namespace smtsim::obs;
using namespace smtsim::test;

namespace
{

/** Sink that keeps every event in memory. */
class VectorSink : public EventSink
{
  public:
    void event(const Event &ev) override { events.push_back(ev); }
    std::vector<Event> events;
};

/** A few-hundred-cycle multithreaded loop (every slot counts a
 *  tid-dependent number of iterations, then stores its total). */
constexpr const char *kLoopProgram = R"(
        .text
main:   fastfork
        tid  r1
        li   r2, 40
        sll  r3, r1, 3
        add  r2, r2, r3
        li   r4, 0
        li   r8, 0
loop:   addi r4, r4, 1
        slt  r5, r4, r2
        bne  r5, r8, loop
        la   r6, out
        sll  r7, r1, 2
        add  r6, r6, r7
        sw   r4, 0(r6)
        halt
        .data
out:    .word 0, 0, 0, 0, 0, 0, 0, 0
)";

std::vector<Event>
recordCore(const Program &prog, const CoreConfig &cfg,
           RunStats *stats_out = nullptr)
{
    MainMemory mem;
    prog.loadInto(mem);
    MultithreadedProcessor cpu(prog, mem, cfg);
    VectorSink sink;
    cpu.setEventSink(&sink);
    RunStats stats = cpu.run();
    if (stats_out)
        *stats_out = stats;
    return sink.events;
}

std::uint64_t
countRetired(const std::vector<Event> &events)
{
    std::uint64_t n = 0;
    for (const Event &ev : events) {
        if (ev.kind == EventKind::Grant)
            ++n;
        else if (ev.kind == EventKind::Issue && ev.fu == -1)
            ++n;
    }
    return n;
}

} // namespace

TEST(ObsEvent, RingPackRoundTrip)
{
    const int ring[4] = {2, 0, 3, 1};
    const std::uint64_t packed = packRing(ring, 4);
    int out[4] = {-1, -1, -1, -1};
    unpackRing(packed, out, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ring[i], out[i]);

    // Single slot and the 16-slot ceiling.
    const int one[1] = {0};
    int one_out[1] = {-1};
    unpackRing(packRing(one, 1), one_out, 1);
    EXPECT_EQ(one_out[0], 0);

    int big[16], big_out[16];
    for (int i = 0; i < 16; ++i)
        big[i] = 15 - i;
    unpackRing(packRing(big, 16), big_out, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(big[i], big_out[i]);
}

TEST(ObsEvent, KindNamesAndFormat)
{
    std::set<std::string> names;
    for (int k = 0; k < kNumEventKinds; ++k)
        names.insert(eventKindName(static_cast<EventKind>(k)));
    EXPECT_EQ(static_cast<int>(names.size()), kNumEventKinds)
        << "event kind names must be distinct";

    Event ev;
    ev.cycle = 42;
    ev.kind = EventKind::Grant;
    ev.slot = 1;
    ev.fu = 2;
    ev.unit = 0;
    ev.pc = 0x1000;
    const std::string line = formatEvent(ev);
    EXPECT_NE(line.find("grant"), std::string::npos) << line;
    EXPECT_NE(line.find("42"), std::string::npos) << line;
}

TEST(ObsEvent, BinaryStreamRoundTrip)
{
    std::vector<Event> in;
    for (int i = 0; i < 300; ++i) {
        Event ev;
        ev.cycle = static_cast<Cycle>(i / 3);
        ev.kind = static_cast<EventKind>(i % kNumEventKinds);
        ev.slot = static_cast<std::int8_t>(i % 8);
        ev.fu = static_cast<std::int8_t>(i % 7 - 1);
        ev.unit = static_cast<std::int16_t>(i % 5 - 1);
        ev.pc = static_cast<std::uint32_t>(0x1000 + 4 * i);
        ev.insn = static_cast<std::uint32_t>(0xdead0000u + i);
        ev.a = 0x0123456789abcdefull + i;
        in.push_back(ev);
    }

    std::stringstream ss;
    TraceMeta meta;
    meta.num_slots = 8;
    BinarySink sink(ss, meta);
    for (const Event &ev : in)
        sink.event(ev);
    sink.flush();

    const EventStream out = readEventStream(ss);
    EXPECT_EQ(out.meta.num_slots, 8);
    ASSERT_EQ(out.events.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const Event &a = in[i];
        const Event &b = out.events[i];
        EXPECT_EQ(a.cycle, b.cycle) << i;
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.slot, b.slot) << i;
        EXPECT_EQ(a.fu, b.fu) << i;
        EXPECT_EQ(a.unit, b.unit) << i;
        EXPECT_EQ(a.pc, b.pc) << i;
        EXPECT_EQ(a.insn, b.insn) << i;
        EXPECT_EQ(a.a, b.a) << i;
    }
}

TEST(ObsEvent, BinaryReaderRejectsGarbage)
{
    std::stringstream bad("this is not an event stream");
    EXPECT_THROW(readEventStream(bad), std::runtime_error);

    // Truncated mid-record.
    std::stringstream ss;
    TraceMeta meta;
    meta.num_slots = 2;
    BinarySink sink(ss, meta);
    Event ev;
    ev.kind = EventKind::Issue;
    sink.event(ev);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() - 3);
    std::stringstream cut(bytes);
    EXPECT_THROW(readEventStream(cut), std::runtime_error);
}

TEST(ObsEvent, NdjsonLinesParse)
{
    Machine m(kLoopProgram);
    MultithreadedProcessor cpu(m.prog, m.mem, {});
    std::stringstream ss;
    NdjsonSink sink(ss);
    cpu.setEventSink(&sink);
    cpu.run();

    std::string line;
    std::size_t lines = 0;
    while (std::getline(ss, line)) {
        const Json j = Json::parse(line);
        EXPECT_TRUE(j.find("c") != nullptr) << line;
        EXPECT_TRUE(j.find("k") != nullptr) << line;
        ++lines;
    }
    EXPECT_GT(lines, 10u);
}

TEST(ObsEvent, CoreStreamMatchesRunStats)
{
    CoreConfig cfg;
    RunStats stats;
    const Program prog = assemble(kLoopProgram);
    const std::vector<Event> events =
        recordCore(prog, cfg, &stats);
    ASSERT_FALSE(events.empty());

    // Stream starts with the synthetic snapshot prologue and ends
    // with the run-end marker.
    EXPECT_EQ(events.front().kind, EventKind::Snapshot);
    EXPECT_EQ(events.back().kind, EventKind::RunEnd);
    EXPECT_EQ(events.back().cycle, stats.cycles);
    EXPECT_EQ(events.back().a, stats.instructions);

    // Retirement invariant: grants + decode-retired control ops.
    EXPECT_EQ(countRetired(events), stats.instructions);

    // Cycle numbers never decrease.
    Cycle prev = 0;
    for (const Event &ev : events) {
        EXPECT_GE(ev.cycle, prev);
        prev = ev.cycle;
    }
}

TEST(ObsEvent, BaselineStreamMatchesRunStats)
{
    Machine m(kLoopProgram);
    BaselineProcessor cpu(m.prog, m.mem, {});
    VectorSink sink;
    cpu.setEventSink(&sink);
    const RunStats stats = cpu.run();

    ASSERT_FALSE(sink.events.empty());
    EXPECT_EQ(sink.events.front().kind, EventKind::Snapshot);
    EXPECT_EQ(sink.events.back().kind, EventKind::RunEnd);
    EXPECT_EQ(sink.events.back().a, stats.instructions);
    EXPECT_EQ(countRetired(sink.events), stats.instructions);
}

TEST(ObsEvent, TextSinkPipeTraceShim)
{
    Machine m(kLoopProgram);
    MultithreadedProcessor cpu(m.prog, m.mem, {});
    std::stringstream ss;
    cpu.setPipeTrace(&ss);
    cpu.run();
    const std::string text = ss.str();
    EXPECT_NE(text.find("grant"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_NE(text.find("snapshot"), std::string::npos);
}

TEST(ObsScope, ViewTracksRetirementAndStepping)
{
    CoreConfig cfg;
    RunStats stats;
    const Program prog = assemble(kLoopProgram);
    std::stringstream ss;
    {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        TraceMeta meta;
        meta.num_slots = cfg.num_slots;
        BinarySink sink(ss, meta);
        cpu.setEventSink(&sink);
        stats = cpu.run();
    }

    const ScopeModel model(readEventStream(ss));
    ASSERT_FALSE(model.empty());
    EXPECT_EQ(model.numSlots(), cfg.num_slots);
    EXPECT_EQ(model.lastCycle(), stats.cycles);

    // The final view accounts for every retired instruction.
    const ScopeView last = model.viewAt(model.lastCycle());
    EXPECT_EQ(last.instructions, stats.instructions);

    // Forward stepping visits strictly increasing cycles and
    // prevEventCycle inverts nextEventCycle at every step.
    Cycle c = model.firstCycle();
    std::vector<Cycle> forward{c};
    for (;;) {
        const Cycle n = model.nextEventCycle(c);
        if (n == kNeverCycle)
            break;
        ASSERT_GT(n, c);
        EXPECT_EQ(model.prevEventCycle(n), c);
        forward.push_back(n);
        c = n;
    }
    EXPECT_EQ(forward.back(), model.lastCycle());

    // Walking backward reconstructs the same views as forward:
    // replay is pure, order of queries must not matter.
    for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
        const ScopeView v = model.viewAt(*it);
        EXPECT_EQ(v.cycle, *it);
        EXPECT_FALSE(v.events.empty());
        std::uint64_t retired_here = 0;
        for (const Event &ev : v.events) {
            if (ev.kind == EventKind::Grant ||
                (ev.kind == EventKind::Issue && ev.fu == -1))
                ++retired_here;
        }
        const Cycle p = model.prevEventCycle(*it);
        const std::uint64_t before =
            p == kNeverCycle ? 0 : model.viewAt(p).instructions;
        EXPECT_EQ(v.instructions, before + retired_here) << *it;
    }

    // Off-stream queries clamp sensibly.
    EXPECT_EQ(model.nextEventCycle(model.lastCycle()),
              kNeverCycle);
    EXPECT_EQ(model.prevEventCycle(model.firstCycle()),
              kNeverCycle);
}

TEST(ObsScope, KeyframesCoverLongStreams)
{
    // More events than one keyframe stride, so random access uses
    // the keyframe path; views must match a freshly-built model's.
    BsearchParams bp;
    bp.table_size = 64;
    bp.queries_per_thread = 32;
    const Workload w = makeBsearch(bp);
    CoreConfig cfg;
    cfg.max_cycles = 500'000;

    std::stringstream ss;
    MainMemory mem;
    w.program.loadInto(mem);
    if (w.init)
        w.init(mem);
    MultithreadedProcessor cpu(w.program, mem, cfg);
    TraceMeta meta;
    meta.num_slots = cfg.num_slots;
    BinarySink sink(ss, meta);
    cpu.setEventSink(&sink);
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);

    const EventStream stream = readEventStream(ss);
    ASSERT_GT(stream.events.size(), 4096u)
        << "workload too small to exercise keyframes";
    const ScopeModel model(stream);

    // Query far into the stream first (builds on keyframes), then
    // compare sampled cycles against a fresh model queried cold.
    const ScopeModel fresh(stream);
    const Cycle last = model.lastCycle();
    std::stringstream a, b;
    ScopeModel::dump(model.viewAt(last), a);
    ScopeModel::dump(fresh.viewAt(last), b);
    EXPECT_EQ(a.str(), b.str());
    for (Cycle c = model.firstCycle(); c < last;
         c += last / 7 + 1) {
        std::stringstream da, db;
        ScopeModel::dump(model.viewAt(c), da);
        ScopeModel::dump(fresh.viewAt(c), db);
        EXPECT_EQ(da.str(), db.str()) << "cycle " << c;
    }
}

TEST(ObsScope, SuffixStreamAfterRestoreMatchesFullStream)
{
    // Record a full-run stream; checkpoint the same run mid-way;
    // restore with a fresh sink and record the suffix stream. Over
    // the common cycles both must reconstruct identical views.
    const Program prog = assemble(kLoopProgram);
    CoreConfig cfg;

    std::stringstream full_ss;
    RunStats full_stats;
    {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        TraceMeta meta;
        meta.num_slots = cfg.num_slots;
        BinarySink sink(full_ss, meta);
        cpu.setEventSink(&sink);
        full_stats = cpu.run();
    }
    ASSERT_TRUE(full_stats.finished);
    const Cycle at = full_stats.cycles / 2;

    std::stringstream ckpt;
    {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        cpu.runUntil(at);
        cpu.saveCheckpoint(ckpt);
    }

    std::stringstream suffix_ss;
    {
        MainMemory mem;
        MultithreadedProcessor cpu(prog, mem, cfg);
        cpu.restoreCheckpoint(ckpt);
        TraceMeta meta;
        meta.num_slots = cfg.num_slots;
        BinarySink sink(suffix_ss, meta);
        cpu.setEventSink(&sink);
        const RunStats s = cpu.run();
        EXPECT_EQ(s.cycles, full_stats.cycles);
        EXPECT_EQ(s.instructions, full_stats.instructions);
    }

    const ScopeModel full(readEventStream(full_ss));
    const ScopeModel suffix(readEventStream(suffix_ss));
    ASSERT_FALSE(suffix.empty());

    // Every event cycle of the suffix past the snapshot point must
    // dump identically in both models.
    Cycle c = suffix.firstCycle();
    int compared = 0;
    for (; c != kNeverCycle; c = suffix.nextEventCycle(c)) {
        if (c <= at)
            continue;   // snapshot prologue cycle itself
        std::stringstream da, db;
        ScopeModel::dump(full.viewAt(c), da);
        ScopeModel::dump(suffix.viewAt(c), db);
        EXPECT_EQ(da.str(), db.str()) << "cycle " << c;
        ++compared;
    }
    EXPECT_GT(compared, 5);
}
