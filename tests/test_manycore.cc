/**
 * @file
 * Many-core machine model (docs/MANYCORE.md): interconnect timing
 * arithmetic, single-core parity with the lone elementary
 * processor, and — the load-bearing property — bit-identical
 * results across every host-thread schedule, runUntil() split and
 * checkpoint/restore cut.
 */

#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "harness/runner.hh"
#include "machine/manycore.hh"
#include "machine/manycore_json.hh"
#include "machine/run_stats_json.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

/** Small matmul whose data segment doubles as the remote region. */
Workload
testWorkload()
{
    MatmulParams mp;
    mp.n = 6;
    return makeMatmul(mp);
}

MachineConfig
coupledConfig(const Workload &w, int num_cores)
{
    MachineConfig cfg;
    cfg.num_cores = num_cores;
    cfg.core.max_cycles = 500'000;
    // Route every data-segment access through the interconnect so
    // the quantum machinery is actually exercised.
    cfg.core.remote.base = w.program.data_base;
    cfg.core.remote.size =
        static_cast<Addr>(w.program.data.size());
    return cfg;
}

std::function<void(int, MainMemory &)>
initHook(const Workload &w)
{
    return [&w](int, MainMemory &mem) {
        if (w.init)
            w.init(mem);
    };
}

/** Full architectural state of one machine, for cross-schedule
 *  comparison: per-core per-frame registers + data memory. */
struct MachineState
{
    std::vector<std::uint32_t> iregs;
    std::vector<std::uint64_t> fregs;
    std::vector<std::uint32_t> data;
};

MachineState
captureState(const ManyCoreMachine &m, const Workload &w)
{
    MachineState st;
    const int frames = m.config().core.frames();
    for (int c = 0; c < m.numCores(); ++c) {
        for (int f = 0; f < frames; ++f) {
            for (RegIndex r = 0; r < kNumRegs; ++r) {
                st.iregs.push_back(m.core(c).intReg(f, r));
                st.fregs.push_back(std::bit_cast<std::uint64_t>(
                    m.core(c).fpReg(f, r)));
            }
        }
        const Addr base = w.program.data_base;
        const Addr end =
            base + static_cast<Addr>(w.program.data.size());
        for (Addr a = base; a < end; a += 4)
            st.data.push_back(m.memory(c).read32(a));
    }
    return st;
}

/** Everything except `quanta`, which is allowed to depend on where
 *  runUntil() was split (never on host threads). */
void
expectSameTiming(const MachineStats &a, const MachineStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.finished, b.finished) << what;
    ASSERT_EQ(a.cores.size(), b.cores.size()) << what;
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_TRUE(statsEqual(a.cores[i], b.cores[i]))
            << what << " core " << i;
    }
    EXPECT_EQ(a.noc.requests, b.noc.requests) << what;
    EXPECT_EQ(a.noc.conflicts, b.noc.conflicts) << what;
    EXPECT_EQ(a.noc.total_latency, b.noc.total_latency) << what;
    EXPECT_EQ(a.noc.bank_accesses, b.noc.bank_accesses) << what;
    EXPECT_EQ(a.noc.bank_conflicts, b.noc.bank_conflicts) << what;
}

} // namespace

// ---------------------------------------------------------------
// Interconnect timing arithmetic
// ---------------------------------------------------------------

TEST(Interconnect, BanksAreAddressInterleaved)
{
    InterconnectConfig cfg;
    cfg.l2_banks = 4;
    cfg.bank_interleave = 64;
    const Interconnect noc(cfg, 2);
    EXPECT_EQ(noc.bankOf(0), 0);
    EXPECT_EQ(noc.bankOf(63), 0);
    EXPECT_EQ(noc.bankOf(64), 1);
    EXPECT_EQ(noc.bankOf(3 * 64), 3);
    EXPECT_EQ(noc.bankOf(4 * 64), 0);   // wraps
    EXPECT_EQ(noc.bankOf(4 * 64 + 65), 1);
}

TEST(Interconnect, UncontendedLatencyIsServicePlusRoundTrip)
{
    InterconnectConfig cfg;
    cfg.l2_banks = 2;
    cfg.l2_access_cycles = 20;
    cfg.hop_latency = 3;
    const Interconnect noc(cfg, 4);
    for (int core = 0; core < 4; ++core) {
        for (Addr a : {0u, 64u, 4096u}) {
            const int h = noc.hops(core, noc.bankOf(a));
            EXPECT_GE(h, 1);
            EXPECT_EQ(noc.uncontendedLatency(core, a),
                      20 + 2ull * h * 3);
        }
    }
    // minLatency is the single-hop round trip.
    EXPECT_EQ(noc.minLatency(), 20 + 2ull * 3);
}

TEST(Interconnect, BusyBankQueuesAndChargesThePenalty)
{
    InterconnectConfig cfg;
    cfg.l2_banks = 1;
    cfg.mshrs_per_bank = 2;
    cfg.l2_access_cycles = 10;
    cfg.bank_conflict_penalty = 5;
    cfg.hop_latency = 1;
    Interconnect noc(cfg, 1);

    // Three same-cycle requests into a 2-slot bank: the first two
    // proceed uncontended, the third queues behind the earliest
    // slot and pays the penalty.
    std::vector<Cycle> done;
    for (std::uint64_t s = 0; s < 3; ++s)
        done.push_back(
            noc.resolve(RemoteRequest{100, 0, 0, 0, s}));
    EXPECT_EQ(done[0], done[1]);
    EXPECT_GT(done[2], done[1]);
    EXPECT_EQ(noc.stats().requests, 3u);
    EXPECT_EQ(noc.stats().conflicts, 1u);
    EXPECT_EQ(noc.stats().bank_conflicts[0], 1u);
    for (Cycle c : done)
        EXPECT_GE(c, 100 + noc.minLatency());
}

TEST(Interconnect, ResolveIsAPureFoldOverTheSequence)
{
    InterconnectConfig cfg;
    cfg.l2_banks = 2;
    cfg.mshrs_per_bank = 1;
    Interconnect a(cfg, 3);
    Interconnect b(cfg, 3);

    // Same canonical sequence, batched differently by the caller:
    // identical completions and identical serialized bank state.
    std::vector<RemoteRequest> reqs;
    for (std::uint64_t i = 0; i < 12; ++i) {
        reqs.push_back(RemoteRequest{
            50 + i / 3, static_cast<int>(i % 3), 0,
            static_cast<Addr>(i * 48), i});
    }
    std::vector<Cycle> ca, cb;
    for (const RemoteRequest &r : reqs)
        ca.push_back(a.resolve(r));
    for (std::size_t i = 0; i < reqs.size(); ++i)
        cb.push_back(b.resolve(reqs[i]));
    EXPECT_EQ(ca, cb);

    std::ostringstream sa, sb;
    {
        obs::ByteWriter wa(sa), wb(sb);
        a.save(wa);
        b.save(wb);
    }
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(Interconnect, RejectsDegenerateTopology)
{
    InterconnectConfig cfg;
    cfg.l2_banks = 0;
    EXPECT_THROW(Interconnect(cfg, 2), FatalError);

    cfg = {};
    cfg.l2_access_cycles = 1;
    cfg.hop_latency = 0;
    // Minimum latency 1 leaves no room for a safe quantum.
    EXPECT_THROW(Interconnect(cfg, 2), FatalError);
}

// ---------------------------------------------------------------
// Machine model
// ---------------------------------------------------------------

TEST(ManyCore, UncoupledSingleCoreMatchesLoneProcessor)
{
    const Workload w = testWorkload();
    CoreConfig core;
    core.max_cycles = 500'000;
    const Outcome lone = runCore(w, core);
    ASSERT_TRUE(lone.ok) << lone.error;

    MachineConfig mcfg;
    mcfg.num_cores = 1;
    mcfg.core = core;           // no remote region: no coupling
    const MachineOutcome mo = runMachine(w, mcfg);
    ASSERT_TRUE(mo.ok) << mo.error;
    EXPECT_EQ(mo.stats.quanta, 1u);     // collapses to one quantum
    EXPECT_EQ(mo.stats.noc.requests, 0u);
    ASSERT_EQ(mo.stats.cores.size(), 1u);
    EXPECT_TRUE(statsEqual(lone.stats, mo.stats.cores[0]));
    EXPECT_TRUE(statsEqual(lone.stats, mo.stats.aggregate()));
}

TEST(ManyCore, RemoteTrafficGoesThroughTheInterconnect)
{
    const Workload w = testWorkload();
    const MachineOutcome mo =
        runMachine(w, coupledConfig(w, 2));
    ASSERT_TRUE(mo.ok) << mo.error;
    EXPECT_GT(mo.stats.noc.requests, 0u);
    EXPECT_GT(mo.stats.quanta, 1u);
    EXPECT_GT(mo.stats.noc.total_latency,
              mo.stats.noc.requests);    // > 1 cycle per request
}

TEST(ManyCore, HostThreadScheduleIsBitIdentical)
{
    const Workload w = testWorkload();
    const MachineConfig cfg = coupledConfig(w, 4);

    MachineStats ref_stats;
    MachineState ref_state;
    bool have_ref = false;
    for (int threads : {0, 1, 2, 3, 8}) {
        ManyCoreMachine m(w.program, cfg, initHook(w));
        const MachineStats s = m.run(threads);
        ASSERT_TRUE(s.finished) << "threads=" << threads;
        const MachineState st = captureState(m, w);
        if (!have_ref) {
            ref_stats = s;
            ref_state = st;
            have_ref = true;
            continue;
        }
        const std::string what =
            "host threads " + std::to_string(threads);
        EXPECT_TRUE(machineStatsEqual(ref_stats, s)) << what;
        // Full byte identity, quanta included: host threading must
        // not even perturb the barrier schedule.
        EXPECT_EQ(machineStatsToJson(ref_stats).dump(),
                  machineStatsToJson(s).dump())
            << what;
        EXPECT_EQ(ref_state.iregs, st.iregs) << what;
        EXPECT_EQ(ref_state.fregs, st.fregs) << what;
        EXPECT_EQ(ref_state.data, st.data) << what;
    }
}

TEST(ManyCore, RunUntilSplitsAreBitIdentical)
{
    const Workload w = testWorkload();
    const MachineConfig cfg = coupledConfig(w, 2);

    ManyCoreMachine ref(w.program, cfg, initHook(w));
    const MachineStats sr = ref.run();
    ASSERT_TRUE(sr.finished);

    ManyCoreMachine split(w.program, cfg, initHook(w));
    // Uneven split points (including a no-op repeat), alternating
    // host-thread schedules between the legs.
    int threads = 0;
    for (Cycle stop : {7ull, 7ull, 100ull, 101ull, 5000ull}) {
        split.runUntil(stop, threads);
        threads = threads == 0 ? 2 : 0;
        if (!split.finished()) {
            EXPECT_EQ(split.now(), stop);
        }
    }
    const MachineStats ss = split.run();
    expectSameTiming(sr, ss, "split run");
    EXPECT_EQ(captureState(ref, w).data,
              captureState(split, w).data);
}

TEST(ManyCore, CheckpointRoundTripsMidRun)
{
    const Workload w = testWorkload();
    const MachineConfig cfg = coupledConfig(w, 3);

    ManyCoreMachine ref(w.program, cfg, initHook(w));
    const MachineStats sr = ref.run();
    ASSERT_TRUE(sr.finished);
    ASSERT_GT(sr.cycles, 400u);
    const MachineState ref_state = captureState(ref, w);

    ManyCoreMachine a(w.program, cfg, initHook(w));
    a.runUntil(397);            // deliberately not a quantum multiple
    std::stringstream ckpt;
    a.saveCheckpoint(ckpt);

    // Byte stability: saving twice gives identical bytes.
    std::stringstream ckpt2;
    a.saveCheckpoint(ckpt2);
    ASSERT_EQ(ckpt.str(), ckpt2.str());

    // Fresh machine (no init hook: every byte must come from the
    // checkpoint), restore, finish on a parallel schedule.
    ManyCoreMachine b(w.program, cfg);
    b.restoreCheckpoint(ckpt);
    EXPECT_EQ(b.now(), a.now());
    const MachineStats sg = b.run(2);
    expectSameTiming(sr, sg, "restored run");
    const MachineState got = captureState(b, w);
    EXPECT_EQ(ref_state.iregs, got.iregs);
    EXPECT_EQ(ref_state.fregs, got.fregs);
    EXPECT_EQ(ref_state.data, got.data);

    // Save-restore-save reproduces the checkpoint bytes.
    ManyCoreMachine c(w.program, cfg);
    std::stringstream ckpt_in(ckpt2.str());
    c.restoreCheckpoint(ckpt_in);
    std::stringstream ckpt3;
    c.saveCheckpoint(ckpt3);
    EXPECT_EQ(ckpt2.str(), ckpt3.str());
}

TEST(ManyCore, FingerprintRejectsMismatchedMachine)
{
    const Workload w = testWorkload();
    const MachineConfig cfg = coupledConfig(w, 2);
    ManyCoreMachine m(w.program, cfg, initHook(w));
    m.runUntil(100);
    std::stringstream ckpt;
    m.saveCheckpoint(ckpt);
    const std::string bytes = ckpt.str();

    {
        MachineConfig other = cfg;
        other.num_cores = 3;
        ManyCoreMachine wrong(w.program, other, initHook(w));
        std::stringstream in(bytes);
        EXPECT_THROW(wrong.restoreCheckpoint(in),
                     std::runtime_error);
    }
    {
        MachineConfig other = cfg;
        other.noc.l2_banks = 8;
        ManyCoreMachine wrong(w.program, other, initHook(w));
        std::stringstream in(bytes);
        EXPECT_THROW(wrong.restoreCheckpoint(in),
                     std::runtime_error);
    }
    {
        ManyCoreMachine fresh(w.program, cfg, initHook(w));
        std::stringstream cut(bytes.substr(0, bytes.size() / 2));
        EXPECT_THROW(fresh.restoreCheckpoint(cut),
                     std::runtime_error);
    }
}

TEST(ManyCore, RejectsUnsafeQuantum)
{
    const Workload w = testWorkload();
    MachineConfig cfg = coupledConfig(w, 2);
    const Interconnect probe(cfg.noc, cfg.num_cores);
    cfg.quantum = probe.minLatency();   // one past the safe bound
    EXPECT_THROW(ManyCoreMachine(w.program, cfg, initHook(w)),
                 FatalError);

    cfg.quantum = probe.minLatency() - 1;
    ManyCoreMachine ok(w.program, cfg, initHook(w));
    EXPECT_EQ(ok.quantum(), probe.minLatency() - 1);
}

TEST(ManyCore, StatsRoundTripThroughJson)
{
    const Workload w = testWorkload();
    const MachineOutcome mo = runMachine(w, coupledConfig(w, 2));
    ASSERT_TRUE(mo.ok) << mo.error;
    const Json j = machineStatsToJson(mo.stats);
    const MachineStats back =
        machineStatsFromJson(Json::parse(j.dump()));
    EXPECT_TRUE(machineStatsEqual(mo.stats, back));
    EXPECT_EQ(j.dump(), machineStatsToJson(back).dump());
}

TEST(ManyCore, AggregateSumsCoreCounters)
{
    const Workload w = testWorkload();
    const MachineOutcome mo = runMachine(w, coupledConfig(w, 3));
    ASSERT_TRUE(mo.ok) << mo.error;
    const RunStats agg = mo.stats.aggregate();
    std::uint64_t insns = 0, loads = 0;
    Cycle max_cycles = 0;
    for (const RunStats &s : mo.stats.cores) {
        insns += s.instructions;
        loads += s.loads;
        max_cycles = std::max(max_cycles, s.cycles);
    }
    EXPECT_EQ(agg.instructions, insns);
    EXPECT_EQ(agg.loads, loads);
    EXPECT_EQ(agg.cycles, max_cycles);
    EXPECT_EQ(agg.cycles, mo.stats.cycles);
}
