#include <sstream>

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "base/table.hh"
#include "machine/run_stats.hh"

using namespace smtsim;

TEST(StatsGroup, CounterLifecycle)
{
    stats::Group g("grp");
    EXPECT_FALSE(g.has("x"));
    EXPECT_EQ(g.get("x"), 0u);
    ++g.counter("x");
    g.counter("x") += 4;
    EXPECT_TRUE(g.has("x"));
    EXPECT_EQ(g.get("x"), 5u);
    g.reset();
    EXPECT_FALSE(g.has("x"));
}

TEST(StatsGroup, DumpDeterministicOrder)
{
    stats::Group g("g");
    g.counter("zeta") = 1;
    g.counter("alpha") = 2;
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_EQ(oss.str(), "g.alpha 2\ng.zeta 1\n");
}

TEST(Utilization, PaperFormula)
{
    // U = N * L / T * 100 (section 1).
    EXPECT_DOUBLE_EQ(stats::utilizationPercent(30, 1, 100), 30.0);
    EXPECT_DOUBLE_EQ(stats::utilizationPercent(50, 2, 100), 100.0);
    EXPECT_DOUBLE_EQ(stats::utilizationPercent(0, 2, 100), 0.0);
    EXPECT_DOUBLE_EQ(stats::utilizationPercent(10, 1, 0), 0.0);
}

TEST(RunStatsTest, BusiestUnit)
{
    RunStats s;
    s.cycles = 100;
    s.unit_busy[static_cast<int>(FuClass::IntAlu)] = {40};
    s.unit_busy[static_cast<int>(FuClass::LoadStore)] = {80, 10};
    EXPECT_DOUBLE_EQ(s.unitUtilization(FuClass::LoadStore, 0), 80.0);
    EXPECT_DOUBLE_EQ(s.unitUtilization(FuClass::LoadStore, 1), 10.0);
    EXPECT_DOUBLE_EQ(s.busiestUnitUtilization(), 80.0);
}

TEST(RunStatsTest, OutOfRangeUnitIsZero)
{
    RunStats s;
    s.cycles = 10;
    EXPECT_DOUBLE_EQ(s.unitUtilization(FuClass::FpAdd, 3), 0.0);
    EXPECT_DOUBLE_EQ(s.busiestUnitUtilization(), 0.0);
}

TEST(TextTableTest, Renders)
{
    TextTable t("title");
    t.addRow({"a", "bb"});
    t.addRow({"ccc", "d"});
    const std::string s = t.str();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| ccc | d  |"), std::string::npos);
    EXPECT_NE(s.find("|-----|----|"), std::string::npos);
}

TEST(TextTableTest, RaggedRows)
{
    TextTable t;
    t.addRow({"h1", "h2", "h3"});
    t.addRow({"x"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| x  |    |    |"), std::string::npos);
}
