#include <sstream>

#include <gtest/gtest.h>

#include "asmr/assembler.hh"
#include "base/logging.hh"
#include "test_common.hh"

using namespace smtsim;

TEST(Assembler, MinimalProgram)
{
    const Program p = assemble("halt\n");
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(decode(p.text[0]).op, Op::HALT);
    EXPECT_EQ(p.entry, p.text_base);
}

TEST(Assembler, EntryIsMainLabel)
{
    const Program p = assemble(R"(
        nop
main:   halt
)");
    EXPECT_EQ(p.entry, p.text_base + 4);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
# full-line comment
        nop      # trailing comment
        ; semicolon comment
        halt
)");
    EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, AllFormatsParse)
{
    const Program p = assemble(R"(
        add  r1, r2, r3
        addi r4, r5, -10
        lui  r6, 0x1234
        sll  r7, r8, 5
        mul  r9, r10, r11
        fadd f1, f2, f3
        fabs f4, f5
        fcmplt r12, f6, f7
        itof f8, r13
        ftoi r14, f9
        lw   r15, 8(r16)
        sf   f10, -8(r17)
        pstw r18, 0(r19)
        beq  r20, r21, main
main:   blez r22, main
        j    main
        jal  main
        jr   r31
        jalr r23, r24
        nop
        fastfork
        chgpri
        killt
        tid  r25
        nslot r26
        qen  r27, r28
        qenf f11, f12
        qdis
        setrmode explicit, 8
        setrmode implicit, 16
        halt
)");
    EXPECT_EQ(p.text.size(), 31u);
}

TEST(Assembler, BranchOffsets)
{
    const Program p = assemble(R"(
back:   nop
        beq r0, r0, back
        beq r0, r0, fwd
        nop
fwd:    halt
)");
    // beq at index 1 targets index 0: offset -2.
    const Insn b1 = decode(p.text[1]);
    EXPECT_EQ(b1.imm, -2);
    // beq at index 2 targets index 4: offset +1.
    const Insn b2 = decode(p.text[2]);
    EXPECT_EQ(b2.imm, 1);
}

TEST(Assembler, PseudoLaLiMvB)
{
    const Program p = assemble(R"(
        la  r1, data
        li  r2, 0x12345678
        mv  r3, r4
        b   main
main:   halt
        .data
data:   .word 42
)");
    // la/li are two instructions each.
    ASSERT_EQ(p.text.size(), 7u);
    const Insn lui = decode(p.text[2]);
    EXPECT_EQ(lui.op, Op::LUI);
    EXPECT_EQ(lui.imm, 0x1234);
    const Insn ori = decode(p.text[3]);
    EXPECT_EQ(ori.op, Op::ORI);
    EXPECT_EQ(ori.imm, 0x5678);
    const Insn mv = decode(p.text[4]);
    EXPECT_EQ(mv.op, Op::ADD);
    EXPECT_EQ(mv.rt, 0);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(R"(
        halt
        .data
w:      .word 1, 2, -1
f:      .float 1.5
s:      .space 3
a:      .align 8
end:    .word 0xdead
)");
    MainMemory mem;
    p.loadInto(mem);
    EXPECT_EQ(mem.read32(p.symbol("w")), 1u);
    EXPECT_EQ(mem.read32(p.symbol("w") + 4), 2u);
    EXPECT_EQ(mem.read32(p.symbol("w") + 8), 0xffffffffu);
    EXPECT_DOUBLE_EQ(mem.readDouble(p.symbol("f")), 1.5);
    // A label written before .align binds pre-padding; labels after
    // the directive land on the aligned boundary.
    EXPECT_EQ(p.symbol("end") % 8, 0u);
    EXPECT_GE(p.symbol("end"), p.symbol("a"));
    EXPECT_EQ(mem.read32(p.symbol("end")), 0xdeadu);
}

TEST(Assembler, EquAndExpressions)
{
    const Program p = assemble(R"(
        .equ SIZE, 16
        .equ DOUBLE_SIZE, SIZE+SIZE
        addi r1, r0, SIZE
        addi r2, r0, DOUBLE_SIZE
        addi r3, r0, SIZE-20
        halt
        .data
buf:    .space SIZE
tail:   .word 0
)");
    EXPECT_EQ(decode(p.text[0]).imm, 16);
    EXPECT_EQ(decode(p.text[1]).imm, 32);
    EXPECT_EQ(decode(p.text[2]).imm, -4);
    EXPECT_EQ(p.symbol("tail"), p.symbol("buf") + 16);
}

TEST(Assembler, HiLoOperators)
{
    const Program p = assemble(R"(
        lui r1, %hi(target)
        ori r1, r1, %lo(target)
        halt
        .data
        .space 0x1234
target: .word 1
)");
    const std::uint32_t addr = p.symbol("target");
    EXPECT_EQ(static_cast<std::uint32_t>(decode(p.text[0]).imm),
              addr >> 16);
    EXPECT_EQ(static_cast<std::uint32_t>(decode(p.text[1]).imm),
              addr & 0xffffu);
}

TEST(Assembler, MemOperandForms)
{
    const Program p = assemble(R"(
        lw r1, (r2)
        lw r3, 4(r4)
        lw r5, -4(r6)
        halt
)");
    EXPECT_EQ(decode(p.text[0]).imm, 0);
    EXPECT_EQ(decode(p.text[1]).imm, 4);
    EXPECT_EQ(decode(p.text[2]).imm, -4);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1\n"), FatalError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("j nowhere\n"), FatalError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: halt\n"), FatalError);
}

TEST(AssemblerErrors, OperandCount)
{
    EXPECT_THROW(assemble("add r1, r2\n"), FatalError);
    EXPECT_THROW(assemble("halt r1\n"), FatalError);
}

TEST(AssemblerErrors, RegisterKind)
{
    // FP op with integer registers.
    EXPECT_THROW(assemble("fadd r1, r2, r3\n"), FatalError);
    EXPECT_THROW(assemble("add f1, f2, f3\n"), FatalError);
    EXPECT_THROW(assemble("add r1, r2, r32\n"), FatalError);
}

TEST(AssemblerErrors, ImmediateRange)
{
    EXPECT_THROW(assemble("addi r1, r0, 70000\n"), FatalError);
    EXPECT_THROW(assemble("sll r1, r2, 32\n"), FatalError);
    EXPECT_THROW(assemble("lui r1, 0x10000\n"), FatalError);
}

TEST(AssemblerErrors, SegmentMisuse)
{
    EXPECT_THROW(assemble(".word 1\n"), FatalError);
    EXPECT_THROW(assemble(".data\nadd r1, r2, r3\n"), FatalError);
}

TEST(AssemblerErrors, MessageIncludesLineNumber)
{
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Assembler, RoundTripThroughDisassembler)
{
    const Program p = assemble(R"(
        addi r1, r0, 5
        add  r2, r1, r1
        sw   r2, 0(r1)
        halt
)");
    EXPECT_EQ(disassemble(decode(p.text[0])), "addi r1, r0, 5");
    EXPECT_EQ(disassemble(decode(p.text[1])), "add r2, r1, r1");
    EXPECT_EQ(disassemble(decode(p.text[2])), "sw r2, 0(r1)");
    EXPECT_EQ(disassemble(decode(p.text[3])), "halt");
}

TEST(Assembler, CustomBases)
{
    AsmOptions opts;
    opts.text_base = 0x4000;
    opts.data_base = 0x200000;
    const Program p = assemble(R"(
main:   halt
        .data
d:      .word 1
)",
                               opts);
    EXPECT_EQ(p.entry, 0x4000u);
    EXPECT_EQ(p.symbol("d"), 0x200000u);
}

TEST(ProgramTest, InsnAtBoundsChecked)
{
    const Program p = assemble("halt\n");
    EXPECT_EQ(p.insnAt(p.text_base).op, Op::HALT);
    EXPECT_THROW(p.insnAt(p.text_base + 4), FatalError);
    EXPECT_THROW(p.insnAt(p.text_base + 1), FatalError);
    EXPECT_THROW(p.insnAt(0), FatalError);
}

TEST(Assembler, AsciiDirectives)
{
    const Program p = assemble(R"(
        halt
        .data
msg:    .ascii "Hi, \"you\"\n"
zmsg:   .asciiz "end"
tail:   .word 7
)");
    MainMemory mem;
    p.loadInto(mem);
    const Addr msg = p.symbol("msg");
    EXPECT_EQ(mem.read8(msg + 0), 'H');
    EXPECT_EQ(mem.read8(msg + 1), 'i');
    EXPECT_EQ(mem.read8(msg + 2), ',');
    EXPECT_EQ(mem.read8(msg + 4), '"');
    EXPECT_EQ(mem.read8(msg + 9), '\n');
    const Addr z = p.symbol("zmsg");
    EXPECT_EQ(z, msg + 10);
    EXPECT_EQ(mem.read8(z + 0), 'e');
    EXPECT_EQ(mem.read8(z + 3), 0u);    // terminator
    EXPECT_EQ(p.symbol("tail"), z + 4);
    EXPECT_EQ(mem.read32(p.symbol("tail")), 7u);
}

TEST(Assembler, CommentMarkerInsideString)
{
    const Program p = assemble(R"(
        halt
        .data
s:      .ascii "a#b;c"
)");
    MainMemory mem;
    p.loadInto(mem);
    EXPECT_EQ(mem.read8(p.symbol("s") + 1), '#');
    EXPECT_EQ(mem.read8(p.symbol("s") + 3), ';');
}

TEST(Assembler, MultiplicativeExpressions)
{
    const Program p = assemble(R"(
        .equ N, 6
        addi r1, r0, N*8
        addi r2, r0, N*8+4
        addi r3, r0, 100/4-1
        halt
        .data
buf:    .space N*8
end:    .word 0
)");
    EXPECT_EQ(decode(p.text[0]).imm, 48);
    EXPECT_EQ(decode(p.text[1]).imm, 52);
    EXPECT_EQ(decode(p.text[2]).imm, 24);
    EXPECT_EQ(p.symbol("end"), p.symbol("buf") + 48);
}

TEST(Assembler, DivisionByZeroInExpression)
{
    EXPECT_THROW(assemble("addi r1, r0, 4/0\nhalt\n"),
                 FatalError);
}

TEST(ProgramTest, SaveLoadRoundTrip)
{
    const Program p = assemble(R"(
main:   la   r1, data
        lw   r2, 0(r1)
        halt
        .data
data:   .word 0xabcd, 17
)");
    std::stringstream buf;
    p.save(buf);
    const Program q = Program::load(buf);
    EXPECT_EQ(q.text, p.text);
    EXPECT_EQ(q.data, p.data);
    EXPECT_EQ(q.text_base, p.text_base);
    EXPECT_EQ(q.data_base, p.data_base);
    EXPECT_EQ(q.entry, p.entry);
    EXPECT_EQ(q.symbols, p.symbols);
}

TEST(ProgramTest, LoadRejectsCorruptInput)
{
    std::stringstream empty;
    EXPECT_THROW(Program::load(empty), FatalError);

    std::stringstream junk;
    junk << "not a program at all";
    EXPECT_THROW(Program::load(junk), FatalError);
}

TEST(ProgramTest, SavedProgramStillRuns)
{
    const Program p = assemble(R"(
main:   addi r1, r0, 31
        la   r2, out
        sw   r1, 0(r2)
        halt
        .data
out:    .word 0
)");
    std::stringstream buf;
    p.save(buf);
    const Program q = Program::load(buf);

    MainMemory mem;
    q.loadInto(mem);
    BaselineProcessor cpu(q, mem);
    EXPECT_TRUE(cpu.run().finished);
    EXPECT_EQ(mem.read32(q.symbol("out")), 31u);
}
