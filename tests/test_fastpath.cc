/**
 * @file
 * FastEngine vs Interpreter bit-equality: the threaded-code engine
 * must be indistinguishable from the golden model — step counts,
 * per-thread counts, registers, memory, completion and error
 * behaviour — across every workload class, with and without trace
 * recording. (The fuzzer's `fast` differential cells extend this to
 * randomized programs.)
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "fastpath/engine.hh"
#include "harness/runner.hh"
#include "interp/interpreter.hh"
#include "test_common.hh"
#include "trace/synth.hh"
#include "workloads/workloads.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

/** Run @p w on both functional engines and require bit-identical
 *  architectural outcomes. Returns the recorded trace. */
ExecTrace
expectBitIdentical(const Workload &w, int num_threads,
                   bool check_outputs = true)
{
    InterpConfig cfg;
    cfg.num_threads = num_threads;

    MainMemory im;
    w.program.loadInto(im);
    if (w.init)
        w.init(im);
    Interpreter interp(w.program, im, cfg);
    const InterpResult ir = interp.run();

    MainMemory fm;
    w.program.loadInto(fm);
    if (w.init)
        w.init(fm);
    const fastpath::TracedRun traced =
        fastpath::recordTrace(w.program, fm, cfg);
    const InterpResult &fr = traced.result;

    EXPECT_EQ(fr.completed, ir.completed) << w.name;
    EXPECT_EQ(fr.steps, ir.steps) << w.name;
    EXPECT_EQ(fr.per_thread_steps, ir.per_thread_steps) << w.name;
    // The whole memory image, not just the checked outputs.
    EXPECT_TRUE(fm.pages() == im.pages()) << w.name << " memory";
    if (check_outputs && w.check) {
        std::string why;
        EXPECT_TRUE(w.check(fm, &why)) << w.name << ": " << why;
    }

    // Untraced run: recording must not change architectural
    // behaviour (it takes a different dispatch specialization).
    MainMemory um;
    w.program.loadInto(um);
    if (w.init)
        w.init(um);
    fastpath::FastEngine plain(w.program, um, cfg);
    const InterpResult ur = plain.run();
    EXPECT_EQ(ur.steps, ir.steps) << w.name << " untraced";
    EXPECT_TRUE(um.pages() == im.pages())
        << w.name << " untraced memory";
    for (int t = 0; t < num_threads; ++t) {
        for (int r = 0; r < kNumRegs; ++r) {
            EXPECT_EQ(plain.intReg(t, static_cast<RegIndex>(r)),
                      interp.intReg(t, static_cast<RegIndex>(r)))
                << w.name << " t" << t << " r" << r;
        }
    }
    return traced.trace;
}

} // namespace

TEST(Fastpath, SingleThreadWorkloadsBitIdentical)
{
    MatmulParams mp;
    mp.n = 5;
    BsearchParams bp;
    bp.table_size = 32;
    bp.queries_per_thread = 8;
    RadiosityParams dp;
    dp.num_patches = 6;
    ListWalkParams wp;
    wp.num_nodes = 12;
    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    rp.num_spheres = 3;

    for (const Workload &w :
         {makeMatmul(mp), makeBsearch(bp), makeRadiosity(dp),
          makeListWalk(wp), makeRayTrace(rp)}) {
        expectBitIdentical(w, 1);
    }
}

TEST(Fastpath, MultiThreadWorkloadsBitIdentical)
{
    // FASTFORK + doall: the chunk loop covers the prologue, the
    // generic round loop the parallel phase.
    MatmulParams mp;
    mp.n = 5;
    StencilParams sp;
    sp.width = 8;
    sp.height = 6;
    sp.sweeps = 2;
    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    rp.num_spheres = 3;
    for (const Workload &w :
         {makeMatmul(mp), makeStencil(sp), makeRayTrace(rp)}) {
        for (int threads : {2, 4}) {
            expectBitIdentical(w, threads);
        }
    }
}

TEST(Fastpath, QueueRegisterWorkloadsBitIdentical)
{
    // Queue-register communication: blocking reads, depth-limited
    // writes, QEN/QENF/QDIS — all on the generic path.
    RecurrenceParams qp;
    qp.n = 24;
    qp.variant = RecurrenceVariant::DoacrossQueue;
    expectBitIdentical(makeRecurrence(qp), 4);

    RecurrenceParams mp;
    mp.n = 24;
    mp.variant = RecurrenceVariant::DoacrossMemory;
    expectBitIdentical(makeRecurrence(mp), 4);

    // Eager list walk: queues + KILLT + priority gating.
    ListWalkParams wp;
    wp.num_nodes = 12;
    wp.break_at = 7;
    wp.eager = true;
    expectBitIdentical(makeListWalk(wp), 4);
}

TEST(Fastpath, SyntheticKernelsBitIdentical)
{
    for (std::uint64_t seed : {3u, 19u, 101u}) {
        SynthParams sp;
        sp.seed = seed;
        sp.iterations = 24;
        sp.parallel = false;
        const Program prog = makeSyntheticKernel(sp);
        Workload w;
        w.name = "synth-" + std::to_string(seed);
        w.program = prog;
        expectBitIdentical(w, 1, false);
        SynthParams pp = sp;
        pp.parallel = true;
        Workload wpar;
        wpar.name = w.name + "-par";
        wpar.program = makeSyntheticKernel(pp);
        expectBitIdentical(wpar, 4, false);
    }
}

TEST(Fastpath, StreamingTraceMatchesInMemoryTrace)
{
    MatmulParams mp;
    mp.n = 5;
    const Workload w = makeMatmul(mp);
    InterpConfig cfg;
    cfg.num_threads = 4;

    MainMemory m1;
    w.program.loadInto(m1);
    if (w.init)
        w.init(m1);
    const fastpath::TracedRun direct =
        fastpath::recordTrace(w.program, m1, cfg);

    MainMemory m2;
    w.program.loadInto(m2);
    if (w.init)
        w.init(m2);
    const fastpath::TracedRun streamed =
        fastpath::recordTraceStreaming(w.program, m2, cfg);

    EXPECT_EQ(streamed.trace, direct.trace);
    EXPECT_EQ(streamed.result.steps, direct.result.steps);
}

TEST(Fastpath, RecordedTraceRoundTripsThroughSmttrc1)
{
    BsearchParams bp;
    bp.table_size = 32;
    bp.queries_per_thread = 8;
    const Workload w = makeBsearch(bp);
    MainMemory mem;
    w.program.loadInto(mem);
    if (w.init)
        w.init(mem);
    InterpConfig cfg;
    cfg.num_threads = 2;
    const fastpath::TracedRun traced =
        fastpath::recordTrace(w.program, mem, cfg);

    std::stringstream ss;
    traced.trace.save(ss);
    EXPECT_EQ(ExecTrace::load(ss), traced.trace);
}

TEST(Fastpath, StrayFetchTrapsLikeInterpreter)
{
    Machine m("main:   addi r8, r0, 1\n"
              "        jr r8\n");   // jumps to a misaligned address
    fastpath::FastEngine engine(m.prog, m.mem);
    EXPECT_THROW(engine.run(), FatalError);
}

TEST(Fastpath, UndecodableWordTrapsLikeInterpreter)
{
    Program prog = assemble("main:   addi r8, r0, 1\n"
                            "        nop\n"
                            "        halt\n");
    prog.text[1] = 0xfc000000;      // unknown primary opcode
    MainMemory mem;
    prog.loadInto(mem);
    EXPECT_THROW(
        {
            fastpath::FastEngine engine(prog, mem);
            engine.run();
        },
        FatalError);
}

TEST(Fastpath, DeadlockReportedLikeInterpreter)
{
    // A single thread reading an empty queue register with no
    // producer deadlocks in both engines, with the same message.
    const std::string_view src = "main:   qen r4, r5\n"
                                 "        add r6, r4, r4\n"
                                 "        halt\n";
    std::string interp_what, fast_what;
    {
        Machine m(src);
        Interpreter interp(m.prog, m.mem);
        try {
            interp.run();
            FAIL() << "interpreter did not deadlock";
        } catch (const FatalError &e) {
            interp_what = e.what();
        }
    }
    {
        Machine m(src);
        fastpath::FastEngine engine(m.prog, m.mem);
        try {
            engine.run();
            FAIL() << "fast engine did not deadlock";
        } catch (const FatalError &e) {
            fast_what = e.what();
        }
    }
    EXPECT_EQ(fast_what, interp_what);
}

TEST(Fastpath, BudgetExhaustionReported)
{
    Machine m("main: j main\n");
    InterpConfig cfg;
    cfg.max_steps = 1000;
    fastpath::FastEngine engine(m.prog, m.mem, cfg);
    const InterpResult r = engine.run();
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.steps, 1000u);
}

TEST(Fastpath, HarnessRunnerVerifiesOutputs)
{
    MatmulParams mp;
    mp.n = 4;
    const Workload w = makeMatmul(mp);
    const Outcome fast = runFast(w, 2);
    const Outcome interp = runInterp(w, 2);
    EXPECT_TRUE(fast.ok) << fast.error;
    EXPECT_EQ(fast.stats.instructions, interp.stats.instructions);
}
