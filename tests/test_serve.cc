/**
 * @file
 * Tests for smtsim::serve: the wire protocol (including the strict
 * Job JSON round-trip that the daemon's dedup/cache layers depend
 * on), the fair admission queue, single-flight coalescing, the
 * crash-isolated worker pool, and the full daemon over a real unix
 * socket — submit/stream, thundering herd, overload shedding,
 * worker crash recovery and clean shutdown.
 *
 * Worker-pool and server tests exec the real smtsim-serve binary
 * (SMTSIM_SERVE_BIN, injected by CMake) in --worker mode, or a
 * /bin/sh stand-in when a deterministic crash/hang is needed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "lab/lab.hh"
#include "serve/serve.hh"

using namespace smtsim;
using namespace smtsim::lab;
using namespace smtsim::serve;

namespace fs = std::filesystem;

namespace
{

/** Fresh scratch dir per test, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("smtsim-serve-" + tag + "-" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str(const char *leaf) const
    {
        return (path / leaf).string();
    }
};

std::vector<std::string>
realWorker()
{
    return {SMTSIM_SERVE_BIN, "--worker"};
}

/** Consumes the job line, then exits: a deterministic crasher. */
std::vector<std::string>
crashingWorker()
{
    return {"/bin/sh", "-c", "read line; exit 1"};
}

/**
 * Consumes the job line, then hangs: a deterministic staller. The
 * exec matters — the pool kills the worker by pid, and a sleep
 * forked by the shell would outlive that kill holding the daemon's
 * pipes (and the test harness's output pipe) open.
 */
std::vector<std::string>
hangingWorker()
{
    return {"/bin/sh", "-c", "read line; exec sleep 600"};
}

ExperimentSpec
smallSpec(int n = 8, std::vector<int> slots = {1, 2})
{
    ExperimentSpec spec;
    spec.name = "test";
    spec.workloads = {WorkloadSpec::matmul(n)};
    spec.slots = std::move(slots);
    return spec;
}

Job
quickJob(int n = 8)
{
    CoreConfig cfg;
    cfg.num_slots = 2;
    return coreJob("quick", WorkloadSpec::matmul(n), cfg);
}

QueuedJob
queued(const std::string &id)
{
    Job j = quickJob();
    j.id = id;
    return {j, j.cacheKey()};
}

} // namespace

// -- protocol: the strict JSON round-trip contract ----------------

TEST(ServeProtocol, JobRoundTripPreservesCacheKey)
{
    // Every grid axis exercised, so every serialized field is load-
    // bearing for at least one job in this set.
    ExperimentSpec spec;
    spec.workloads = {WorkloadSpec::matmul(6),
                      WorkloadSpec::rayTrace(8, 8)};
    spec.slots = {1, 4};
    spec.frames = {-1, 6};
    spec.lsu = {1, 2};
    spec.widths = {1, 2};
    spec.standby = {false, true};
    spec.rotation_intervals = {4, 16};
    spec.include_baseline = true;

    std::vector<Job> jobs = spec.expand();
    jobs.push_back(interpJob("interp", WorkloadSpec::matmul(6), 3));
    ASSERT_GT(jobs.size(), 32u);

    for (const Job &job : jobs) {
        const Job back = jobFromJson(jobToJson(job));
        EXPECT_EQ(back.cacheKey(), job.cacheKey()) << job.id;
        EXPECT_EQ(back.canonical(), job.canonical()) << job.id;
        EXPECT_EQ(back.id, job.id);
    }
}

TEST(ServeProtocol, NonDefaultCoreFieldsSurviveRoundTrip)
{
    CoreConfig cfg;
    cfg.num_slots = 8;
    cfg.num_frames = 12;
    cfg.width = 2;
    cfg.standby_enabled = false;
    cfg.rotation_mode = RotationMode::Explicit;
    cfg.rotation_interval = 32;
    cfg.private_icache = true;
    cfg.icache_cycles = 3;
    cfg.iqueue_words = 64;
    cfg.queue_reg_depth = 6;
    cfg.branch_gap = 7;
    cfg.context_switch_cycles = 5;
    cfg.remote.base = 0x00400000;
    cfg.remote.size = 0x10000;
    cfg.remote.latency = 250;
    cfg.fast_forward = false;
    cfg.max_cycles = 123456789;

    const Job job = coreJob("dense", WorkloadSpec::stencil(8, 6, 1),
                            cfg);
    const Job back = jobFromJson(jobToJson(job));
    EXPECT_EQ(back.cacheKey(), job.cacheKey());
    EXPECT_EQ(back.canonical(), job.canonical());
}

TEST(ServeProtocol, UnknownJobMemberIsRejected)
{
    Json j = jobToJson(quickJob());
    j.set("turbo_mode", Json(true));
    EXPECT_THROW(jobFromJson(j), JsonParseError);
}

TEST(ServeProtocol, UnknownSpecMemberIsRejected)
{
    Json j = experimentSpecToJson(smallSpec());
    j.set("gpu_count", Json(4));
    EXPECT_THROW(experimentSpecFromJson(j), JsonParseError);
}

TEST(ServeProtocol, ImpossibleGridsAreParseErrors)
{
    // expand() would throw std::invalid_argument on these; the
    // parser must catch them earlier with a JsonParseError so
    // admission rejects with a diagnostic instead of crashing.
    Json j = experimentSpecToJson(smallSpec());
    j.set("slots", Json::array());
    EXPECT_THROW(experimentSpecFromJson(j), JsonParseError);

    j = experimentSpecToJson(smallSpec());
    Json dup = Json::array();
    dup.push(Json(4));
    dup.push(Json(4));
    j.set("slots", std::move(dup));
    EXPECT_THROW(experimentSpecFromJson(j), JsonParseError);

    j = experimentSpecToJson(smallSpec());
    j.set("workloads", Json::array());
    EXPECT_THROW(experimentSpecFromJson(j), JsonParseError);
}

TEST(ServeProtocol, ExperimentSpecRoundTripExpandsIdentically)
{
    ExperimentSpec spec = smallSpec(6, {1, 2, 4});
    spec.standby = {false, true};
    spec.include_baseline = true;
    const ExperimentSpec back =
        experimentSpecFromJson(experimentSpecToJson(spec));

    const std::vector<Job> a = spec.expand();
    const std::vector<Job> b = back.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].cacheKey(), b[i].cacheKey());
    }
}

TEST(ServeProtocol, EventLinesRoundTrip)
{
    JobResult r;
    r.id = "p1";
    r.key = "deadbeefdeadbeef";
    r.ok = true;
    r.stats.cycles = 1234;
    r.stats.instructions = 997;
    r.wall_seconds = 0.25;

    Event ev = parseEvent(eventResult("sub-1", r, "dedup"));
    EXPECT_EQ(ev.type, "result");
    EXPECT_EQ(ev.id, "sub-1");
    EXPECT_EQ(ev.source, "dedup");
    EXPECT_EQ(ev.result.id, "p1");
    EXPECT_EQ(ev.result.stats.cycles, 1234u);
    EXPECT_TRUE(ev.result.ok);

    ev = parseEvent(eventOverloaded("sub-2", "queue full", 17, 16));
    EXPECT_EQ(ev.type, "overloaded");
    EXPECT_EQ(ev.error, "queue full");
    EXPECT_EQ(ev.payload.at("queue_depth").asInt(), 17);
    EXPECT_EQ(ev.payload.at("queue_max").asInt(), 16);

    ev = parseEvent(eventDone("sub-3", 9, 1, 4, 2));
    EXPECT_EQ(ev.payload.at("jobs").asInt(), 9);
    EXPECT_EQ(ev.payload.at("coalesced").asInt(), 2);

    EXPECT_THROW(parseEvent("{\"v\":99,\"event\":\"pong\"}"),
                 JsonParseError);
    EXPECT_THROW(parseEvent("not json"), JsonParseError);
}

// -- fair queue ---------------------------------------------------

TEST(ServeQueue, RoundRobinInterleavesClients)
{
    FairQueue q(16);
    ASSERT_TRUE(q.pushBatch(1, {queued("a1"), queued("a2"),
                                queued("a3"), queued("a4")}));
    ASSERT_TRUE(q.pushBatch(2, {queued("b1"), queued("b2")}));

    std::vector<std::string> order;
    QueuedJob qj;
    while (q.pop(&qj))
        order.push_back(qj.job.id);
    const std::vector<std::string> expect{"a1", "b1", "a2",
                                          "b2", "a3", "a4"};
    EXPECT_EQ(order, expect);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeQueue, LateClientWaitsAtMostOneRound)
{
    FairQueue q(64);
    std::vector<QueuedJob> big;
    for (int i = 0; i < 10; ++i)
        big.push_back(queued("big" + std::to_string(i)));
    ASSERT_TRUE(q.pushBatch(1, std::move(big)));

    QueuedJob qj;
    ASSERT_TRUE(q.pop(&qj));
    EXPECT_EQ(qj.job.id, "big0");

    // A one-job client arriving now joins just before the cursor:
    // it is served after at most one more round (one more heavy-
    // client job), not after the remaining nine.
    ASSERT_TRUE(q.pushBatch(2, {queued("quick")}));
    ASSERT_TRUE(q.pop(&qj));
    EXPECT_EQ(qj.job.id, "big1");
    ASSERT_TRUE(q.pop(&qj));
    EXPECT_EQ(qj.job.id, "quick");
    ASSERT_TRUE(q.pop(&qj));
    EXPECT_EQ(qj.job.id, "big2");
}

TEST(ServeQueue, BatchAdmissionIsAllOrNothing)
{
    FairQueue q(3);
    EXPECT_TRUE(q.canAccept(3));
    EXPECT_FALSE(q.canAccept(4));
    ASSERT_TRUE(q.pushBatch(1, {queued("x1"), queued("x2")}));

    // Two more do not fit; nothing of the batch may land.
    EXPECT_FALSE(q.pushBatch(2, {queued("y1"), queued("y2")}));
    EXPECT_EQ(q.depth(), 2u);

    ASSERT_TRUE(q.pushBatch(2, {queued("y1")}));
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_FALSE(q.canAccept(1));
}

// -- single flight ------------------------------------------------

TEST(ServeSingleFlight, LeaderThenWaitersThenTake)
{
    SingleFlight sf;
    EXPECT_TRUE(sf.join("k1", {1, "a"}));
    EXPECT_FALSE(sf.join("k1", {2, "b"}));
    EXPECT_FALSE(sf.join("k1", {3, "c"}));
    EXPECT_TRUE(sf.join("k2", {4, "d"}));
    EXPECT_TRUE(sf.inFlight("k1"));
    EXPECT_EQ(sf.size(), 2u);

    const std::vector<Waiter> w = sf.take("k1");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0].submission, 1u);     // leader first
    EXPECT_EQ(w[0].job_id, "a");
    EXPECT_EQ(w[2].job_id, "c");
    EXPECT_FALSE(sf.inFlight("k1"));

    // Completed keys can fly again.
    EXPECT_TRUE(sf.join("k1", {5, "e"}));
    EXPECT_TRUE(sf.take("unknown").empty());
}

// -- worker pool --------------------------------------------------

TEST(ServeWorker, ExecutesJobInChildProcess)
{
    WorkerOptions opts;
    opts.argv = realWorker();
    WorkerPool pool(2, opts);

    const JobResult r = pool.execute(quickJob());
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_EQ(r.key, quickJob().cacheKey());

    const WorkerPoolStats s = pool.stats();
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.restarts, 0u);
}

TEST(ServeWorker, SimulationFailureIsAResultNotACrash)
{
    WorkerOptions opts;
    opts.argv = realWorker();
    WorkerPool pool(1, opts);

    Job job = quickJob();
    job.core.max_cycles = 10;   // guaranteed budget exhaustion
    const JobResult r = pool.execute(job);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());

    // Deterministic failures are results; nothing was retried.
    const WorkerPoolStats s = pool.stats();
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.retries, 0u);
}

TEST(ServeWorker, CrashingWorkerIsRetriedThenReported)
{
    WorkerOptions opts;
    opts.argv = crashingWorker();
    opts.max_retries = 2;
    opts.backoff_seconds = 0.01;
    WorkerPool pool(1, opts);

    const JobResult r = pool.execute(quickJob());
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("worker"), std::string::npos)
        << r.error;

    const WorkerPoolStats s = pool.stats();
    EXPECT_EQ(s.retries, 2u);       // both retries consumed
    EXPECT_GE(s.restarts, 3u);      // every attempt burned a child
}

TEST(ServeWorker, HungWorkerIsKilledNotRetried)
{
    WorkerOptions opts;
    opts.argv = hangingWorker();
    opts.job_timeout_seconds = 0.2;
    opts.max_retries = 2;
    WorkerPool pool(1, opts);

    const auto t0 = std::chrono::steady_clock::now();
    const JobResult r = pool.execute(quickJob());
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("budget"), std::string::npos)
        << r.error;
    // A hang is deterministic: one attempt, no retry burn-down.
    EXPECT_EQ(pool.stats().retries, 0u);
    EXPECT_LT(secs, 5.0);
}

TEST(ServeWorker, KilledWorkerMidJobIsRetriedToCompletion)
{
    WorkerOptions opts;
    opts.argv = realWorker();
    opts.max_retries = 2;
    opts.backoff_seconds = 0.01;
    WorkerPool pool(1, opts);

    const std::vector<int> pids = pool.pids();
    ASSERT_EQ(pids.size(), 1u);

    // ~1s of simulation: plenty of window to murder the worker.
    const Job slow = coreJob(
        "slow", WorkloadSpec::rayTrace(128, 128), CoreConfig{});

    auto fut = std::async(std::launch::async,
                          [&] { return pool.execute(slow); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

    const JobResult r = fut.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.stats.cycles, 0u);
    const WorkerPoolStats s = pool.stats();
    EXPECT_GE(s.retries, 1u);
    EXPECT_GE(s.restarts, 1u);
}

// -- server end to end --------------------------------------------

namespace
{

ServeOptions
serverOptions(const TempDir &tmp, int workers = 2)
{
    ServeOptions opts;
    opts.socket_path = tmp.str("serve.sock");
    opts.num_workers = workers;
    opts.cache_dir = tmp.str("cache");
    opts.worker_argv = realWorker();
    opts.backoff_seconds = 0.01;
    return opts;
}

} // namespace

TEST(ServeServer, SubmitStreamsResultsThenServesFromCache)
{
    TempDir tmp("e2e");
    Server server(serverOptions(tmp));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    SubmitOutcome out =
        client.submitAndWait("first", smallSpec(), 30000);
    ASSERT_EQ(out.status, "done") << out.error;
    EXPECT_EQ(out.jobs, 2u);
    ASSERT_EQ(out.results.size(), 2u);
    for (std::size_t i = 0; i < out.results.size(); ++i) {
        EXPECT_TRUE(out.results[i].ok) << out.results[i].error;
        EXPECT_EQ(out.sources[i], "sim");
    }

    // Identical resubmission: all cache, nothing simulated again.
    out = client.submitAndWait("second", smallSpec(), 30000);
    ASSERT_EQ(out.status, "done") << out.error;
    EXPECT_EQ(out.cache_hits, 2u);
    for (const std::string &src : out.sources)
        EXPECT_EQ(src, "cache");

    EXPECT_EQ(server.stats().executed, 2u);
    server.stop();
}

TEST(ServeServer, ThunderingHerdExecutesExactlyOnce)
{
    TempDir tmp("herd");
    Server server(serverOptions(tmp, 4));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // One identical single-job spec from many concurrent clients.
    const ExperimentSpec spec = smallSpec(10, {4});
    constexpr int kClients = 16;

    std::vector<std::future<SubmitOutcome>> futures;
    futures.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        futures.push_back(std::async(std::launch::async, [&, c] {
            Client client;
            std::string err;
            if (!client.connect(tmp.str("serve.sock"), &err)) {
                SubmitOutcome bad;
                bad.status = "disconnected";
                bad.error = err;
                return bad;
            }
            return client.submitAndWait(
                "herd-" + std::to_string(c), spec, 30000);
        }));
    }

    std::size_t dedup_or_cached = 0;
    for (auto &f : futures) {
        const SubmitOutcome out = f.get();
        ASSERT_EQ(out.status, "done") << out.error;
        ASSERT_EQ(out.results.size(), 1u);
        EXPECT_TRUE(out.results[0].ok) << out.results[0].error;
        if (out.sources[0] == "dedup" || out.sources[0] == "cache")
            ++dedup_or_cached;
    }

    // The acceptance criterion: N identical concurrent submissions,
    // exactly one simulation.
    EXPECT_EQ(server.stats().executed, 1u);
    EXPECT_EQ(dedup_or_cached,
              static_cast<std::size_t>(kClients - 1));
    server.stop();
}

TEST(ServeServer, OverloadIsShedExplicitlyAndServerStaysUp)
{
    TempDir tmp("overload");
    ServeOptions opts = serverOptions(tmp, 1);
    opts.worker_argv = hangingWorker();     // nothing ever finishes
    opts.queue_max = 2;
    opts.job_timeout_seconds = 600;
    Server server(std::move(opts));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Fills the queue: two jobs admitted, one soon checked out by
    // the single dispatcher and stuck in the hanging worker.
    Client filler;
    ASSERT_TRUE(filler.connect(tmp.str("serve.sock"), &error))
        << error;
    ASSERT_TRUE(filler.sendRaw(
        submitLine("filler", smallSpec(8, {1, 2}))));
    Event ev;
    ASSERT_EQ(filler.readEvent(&ev, 10000), ReadStatus::Ok);
    ASSERT_EQ(ev.type, "accepted");

    // A different two-job spec (no dedup possible) must be shed
    // with an explicit overload, not queued and not dropped.
    Client victim;
    ASSERT_TRUE(victim.connect(tmp.str("serve.sock"), &error))
        << error;
    const SubmitOutcome out = victim.submitAndWait(
        "victim", smallSpec(9, {1, 2}), 10000);
    EXPECT_EQ(out.status, "overloaded");
    EXPECT_FALSE(out.error.empty());

    // Shedding is not a failure mode: the daemon still answers.
    EXPECT_TRUE(victim.ping(&error)) << error;
    const ServerStats s = server.stats();
    EXPECT_EQ(s.overloaded, 1u);
    server.stop();
}

TEST(ServeServer, MalformedAndInvalidSubmissionsAreRejected)
{
    TempDir tmp("reject");
    Server server(serverOptions(tmp, 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    // Not JSON at all: diagnostic error event, connection lives.
    ASSERT_TRUE(client.sendRaw("{\"v\":1,\"op\":tru\n"));
    Event ev;
    ASSERT_EQ(client.readEvent(&ev, 10000), ReadStatus::Ok);
    EXPECT_EQ(ev.type, "error");
    EXPECT_NE(ev.error.find("offset"), std::string::npos)
        << ev.error;

    // Spec with an unknown member: strict admission rejects it.
    Json submit = Json::parse(submitLine("bad", smallSpec()));
    Json spec_json = submit.at("spec");
    spec_json.set("quantum_bits", Json(11));
    submit.set("spec", spec_json);
    ASSERT_TRUE(client.sendRaw(submit.dump() + "\n"));
    ASSERT_EQ(client.readEvent(&ev, 10000), ReadStatus::Ok);
    EXPECT_EQ(ev.type, "rejected");
    EXPECT_NE(ev.error.find("quantum_bits"), std::string::npos)
        << ev.error;

    server.stop();

    // A spec whose *uncached* jobs outnumber the whole queue can
    // never run, so it is rejected outright rather than shed as
    // transient load. (Were the cache warm, it would be admitted —
    // see WarmCacheSweepLargerThanQueueIsServed.)
    ExperimentSpec huge = smallSpec();
    huge.slots = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_GT(huge.expand().size(), 4u);
    TempDir tmp2("reject2");
    ServeOptions tiny = serverOptions(tmp2, 1);
    tiny.queue_max = 4;
    Server server2(std::move(tiny));
    ASSERT_TRUE(server2.start(&error)) << error;
    Client client2;
    ASSERT_TRUE(client2.connect(tmp2.str("serve.sock"), &error))
        << error;
    const SubmitOutcome rejected =
        client2.submitAndWait("huge", huge, 10000);
    EXPECT_EQ(rejected.status, "rejected");
    EXPECT_NE(rejected.error.find("queue"), std::string::npos)
        << rejected.error;
    server2.stop();
}

TEST(ServeServer, LintGateRejectsDeadlockedSpecBeforeAdmission)
{
    TempDir tmp("lint");
    Server server(serverOptions(tmp, 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    // The tokenring wait-cycle variant deadlocks every slot; the
    // static verifier proves it, so admission must reject the spec
    // without consuming a queue slot or a worker.
    ExperimentSpec bad;
    bad.name = "bad";
    bad.workloads = {WorkloadSpec::tokenRing(8, 1)};
    bad.slots = {4};
    const SubmitOutcome out =
        client.submitAndWait("bad", bad, 10000);
    EXPECT_EQ(out.status, "rejected");
    EXPECT_NE(out.error.find("Q009"), std::string::npos)
        << out.error;
    // Rejections use the same rendering as smtsim-lint:
    // "<file>:<line>:<col>: <severity>: <ID> <name>: ..."
    EXPECT_NE(out.error.find("tokenring.s:"), std::string::npos)
        << out.error;

    ServerStats s = server.stats();
    EXPECT_EQ(s.lint_rejected, 1u);
    EXPECT_EQ(s.lint_cache_hits, 0u);
    EXPECT_EQ(s.executed, 0u);

    // Resubmission: the verdict is served from the program
    // fingerprint cache, not re-analyzed.
    const SubmitOutcome again =
        client.submitAndWait("bad-again", bad, 10000);
    EXPECT_EQ(again.status, "rejected");
    EXPECT_NE(again.error.find("Q009"), std::string::npos)
        << again.error;
    s = server.stats();
    EXPECT_EQ(s.lint_rejected, 2u);
    EXPECT_GE(s.lint_cache_hits, 1u);
    EXPECT_EQ(s.executed, 0u);

    // The clean ring passes the same gate and actually simulates.
    ExperimentSpec good;
    good.name = "good";
    good.workloads = {WorkloadSpec::tokenRing(4, 0)};
    good.slots = {2};
    const SubmitOutcome ok =
        client.submitAndWait("good", good, 30000);
    EXPECT_EQ(ok.status, "done") << ok.error;
    EXPECT_EQ(server.stats().lint_rejected, 2u);
    server.stop();
}

TEST(ServeServer, NoLintOptionDisablesTheGate)
{
    TempDir tmp("nolint");
    ServeOptions opts = serverOptions(tmp, 1);
    opts.lint_admission = false;
    opts.job_timeout_seconds = 2.0;
    opts.max_retries = 0;
    Server server(std::move(opts));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    // With the gate off the deadlocked spec is admitted; the job
    // then fails in the worker (deadlock trap or timeout kill)
    // instead of being turned away up front.
    ExperimentSpec bad;
    bad.name = "bad";
    bad.workloads = {WorkloadSpec::tokenRing(8, 1)};
    bad.slots = {4};
    const SubmitOutcome out =
        client.submitAndWait("bad", bad, 30000);
    EXPECT_NE(out.status, "rejected") << out.error;
    EXPECT_EQ(server.stats().lint_rejected, 0u);
    server.stop();
}

TEST(ServeServer, InvalidSpecValuesAreRejectedNotFatal)
{
    TempDir tmp("badspec");
    Server server(serverOptions(tmp, 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    // Structurally valid JSON carrying semantically impossible
    // grids. Each must come back "rejected" with a diagnostic
    // naming the problem — these used to throw past the reader
    // thread's catch and std::terminate() the daemon.
    const struct
    {
        const char *tag;
        const char *member;
        const char *value;
        const char *needle;
    } cases[] = {
        {"empty-axis", "slots", "[]", "slots"},
        {"dup-axis", "slots", "[4,4]", "duplicate"},
        {"no-workloads", "workloads", "[]", "workloads"},
    };
    for (const auto &c : cases) {
        Json submit = Json::parse(submitLine(c.tag, smallSpec()));
        Json spec_json = submit.at("spec");
        spec_json.set(c.member, Json::parse(c.value));
        submit.set("spec", spec_json);
        ASSERT_TRUE(client.sendRaw(submit.dump() + "\n")) << c.tag;
        Event ev;
        ASSERT_EQ(client.readEvent(&ev, 10000), ReadStatus::Ok)
            << c.tag;
        EXPECT_EQ(ev.type, "rejected") << c.tag;
        EXPECT_NE(ev.error.find(c.needle), std::string::npos)
            << ev.error;
    }

    // The daemon survived all of it.
    EXPECT_TRUE(client.ping(&error)) << error;
    EXPECT_EQ(server.stats().rejected, 3u);
    server.stop();
}

TEST(ServeServer, WarmCacheSweepLargerThanQueueIsServed)
{
    TempDir tmp("warm");
    ServeOptions opts = serverOptions(tmp, 1);
    opts.queue_max = 1;
    Server server(std::move(opts));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;

    // Warm the cache one job at a time; each fits the 1-slot queue.
    for (int s : {1, 2}) {
        const SubmitOutcome warm = client.submitAndWait(
            "warm-" + std::to_string(s), smallSpec(8, {s}), 30000);
        ASSERT_EQ(warm.status, "done") << warm.error;
    }

    // The combined sweep expands past the whole queue, but every
    // job is a cache hit and needs no slot — it must be served,
    // not rejected as oversized and not shed as overload.
    const SubmitOutcome out = client.submitAndWait(
        "combined", smallSpec(8, {1, 2}), 30000);
    ASSERT_EQ(out.status, "done") << out.error;
    EXPECT_EQ(out.cache_hits, 2u);
    for (const std::string &src : out.sources)
        EXPECT_EQ(src, "cache");
    EXPECT_EQ(server.stats().rejected, 0u);
    EXPECT_EQ(server.stats().overloaded, 0u);
    server.stop();
}

TEST(ServeServer, ListenRefusesLiveSocketButReclaimsStale)
{
    TempDir tmp("sockown");
    const std::string path = tmp.str("s.sock");
    std::string error;

    Fd first = listenUnix(path, &error);
    ASSERT_TRUE(first.valid()) << error;

    // A second daemon on the same path must fail loudly, not
    // silently steal the live listener's socket file.
    Fd thief = listenUnix(path, &error);
    EXPECT_FALSE(thief.valid());
    EXPECT_NE(error.find("in use"), std::string::npos) << error;

    // Once the owner is gone the file is stale (a probe connect is
    // refused) and the path can be reclaimed.
    first.reset();
    Fd second = listenUnix(path, &error);
    EXPECT_TRUE(second.valid()) << error;
}

TEST(ServeServer, PingStatsAndClientShutdown)
{
    TempDir tmp("ops");
    Server server(serverOptions(tmp, 1));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;
    EXPECT_TRUE(client.ping(&error)) << error;

    Json stats;
    ASSERT_TRUE(client.stats(&stats, &error)) << error;
    EXPECT_EQ(stats.at("queue_max").asInt(), 4096);
    EXPECT_EQ(stats.at("executed").asInt(), 0);
    EXPECT_EQ(stats.at("worker_pids").size(), 1u);

    // Client-driven shutdown: bye ack, then wait() unblocks.
    EXPECT_TRUE(client.shutdownServer(&error)) << error;
    server.wait();
    server.stop();
}

TEST(ServeServer, WorkerCrashMidSweepIsRetriedAndSweepCompletes)
{
    TempDir tmp("crash");
    ServeOptions opts = serverOptions(tmp, 1);
    opts.max_retries = 2;
    Server server(std::move(opts));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    ExperimentSpec spec;
    spec.name = "crashy";
    spec.workloads = {WorkloadSpec::rayTrace(128, 128)};
    spec.slots = {2};

    Client client;
    ASSERT_TRUE(client.connect(tmp.str("serve.sock"), &error))
        << error;
    auto fut = std::async(std::launch::async, [&] {
        return client.submitAndWait("crash", spec, 60000);
    });

    // Give the job time to land in the worker, then kill it.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const std::vector<int> pids = server.workerPids();
    ASSERT_FALSE(pids.empty());
    ::kill(pids[0], SIGKILL);

    const SubmitOutcome out = fut.get();
    ASSERT_EQ(out.status, "done") << out.error;
    ASSERT_EQ(out.results.size(), 1u);
    EXPECT_TRUE(out.results[0].ok) << out.results[0].error;
    EXPECT_GE(server.stats().worker_restarts, 1u);
    server.stop();
}
