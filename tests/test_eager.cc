#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace smtsim;

namespace
{

CoreConfig
eagerConfig(int slots)
{
    CoreConfig cfg;
    cfg.num_slots = slots;
    // The kernel switches to explicit rotation itself, but the
    // sweep should not depend on an implicit rotation sneaking in
    // before the setrmode instruction decodes.
    cfg.rotation_mode = RotationMode::Explicit;
    return cfg;
}

} // namespace

TEST(Eager, FullWalkCorrectOnAllEngines)
{
    ListWalkParams p;
    p.num_nodes = 32;
    p.eager = true;
    const Workload w = makeListWalk(p);
    for (int slots : {1, 2, 3, 4, 6, 8}) {
        const Outcome c = runCore(w, eagerConfig(slots));
        EXPECT_TRUE(c.ok) << "slots=" << slots << ": " << c.error;
        const Outcome i = runInterp(w, slots);
        EXPECT_TRUE(i.ok) << "interp slots=" << slots << ": "
                          << i.error;
    }
}

TEST(Eager, BreakPositionsPreserveSequentialSemantics)
{
    // The break may fall on any thread slot; the priority mechanism
    // must kill exactly the iterations after it.
    for (int break_at : {0, 1, 2, 3, 5, 11, 30}) {
        ListWalkParams p;
        p.num_nodes = 32;
        p.break_at = break_at;
        p.eager = true;
        const Workload w = makeListWalk(p);
        const Outcome c = runCore(w, eagerConfig(4));
        EXPECT_TRUE(c.ok)
            << "break_at=" << break_at << ": " << c.error;
    }
}

TEST(Eager, SingleNodeList)
{
    ListWalkParams p;
    p.num_nodes = 1;
    p.eager = true;
    const Workload w = makeListWalk(p);
    EXPECT_TRUE(runCore(w, eagerConfig(4)).ok);
    EXPECT_TRUE(runCore(w, eagerConfig(1)).ok);
}

TEST(Eager, MatchesSequentialVersionResult)
{
    ListWalkParams p;
    p.num_nodes = 24;
    p.break_at = 13;
    const Workload seq = makeListWalk(p);
    p.eager = true;
    const Workload eager = makeListWalk(p);
    EXPECT_TRUE(runBaseline(seq).ok);
    EXPECT_TRUE(runCore(eager, eagerConfig(4)).ok);
}

TEST(Eager, SpeedupSaturatesWithRecurrence)
{
    // Table 5's shape: adding slots helps until the loop-carried
    // ptr->next recurrence dominates; beyond that the per-iteration
    // time stays flat.
    ListWalkParams p;
    p.num_nodes = 200;
    p.eager = true;
    const Workload w = makeListWalk(p);

    Cycle prev = kNeverCycle;
    std::vector<Cycle> cycles;
    for (int slots : {1, 2, 3, 4, 6, 8}) {
        const Outcome o = runCore(w, eagerConfig(slots));
        ASSERT_TRUE(o.ok) << o.error;
        cycles.push_back(o.stats.cycles);
        EXPECT_LE(o.stats.cycles, prev + prev / 10)
            << "slots=" << slots;
        prev = o.stats.cycles;
    }
    // 2 slots clearly beat 1.
    EXPECT_LT(cycles[1], cycles[0]);
    // 8 slots offer little over 6 (saturation).
    const double six = static_cast<double>(cycles[4]);
    const double eight = static_cast<double>(cycles[5]);
    EXPECT_LT(std::abs(six - eight) / six, 0.15);
}

TEST(Eager, EagerBeatsSequentialBaseline)
{
    ListWalkParams p;
    p.num_nodes = 200;
    const Workload seq = makeListWalk(p);
    p.eager = true;
    const Workload eager = makeListWalk(p);

    const Outcome base = runBaseline(seq);
    const Outcome core = runCore(eager, eagerConfig(4));
    ASSERT_TRUE(base.ok) << base.error;
    ASSERT_TRUE(core.ok) << core.error;
    EXPECT_GT(speedup(base.stats, core.stats), 1.5);
}

TEST(Eager, KillCountsOnlySurvivingInstructions)
{
    // The killed speculative iterations must not inflate committed
    // instruction counts unboundedly: at most ~S iterations of
    // overshoot.
    ListWalkParams p;
    p.num_nodes = 64;
    p.break_at = 10;
    p.eager = true;
    const Workload w = makeListWalk(p);
    const Outcome o = runCore(w, eagerConfig(4));
    ASSERT_TRUE(o.ok) << o.error;
    // 11 iterations of ~15 instructions + prologue + slack for the
    // speculative tail.
    EXPECT_LT(o.stats.instructions, 500u);
}

TEST(Eager, QueueDepthOneStillWorks)
{
    ListWalkParams p;
    p.num_nodes = 16;
    p.eager = true;
    const Workload w = makeListWalk(p);
    CoreConfig cfg = eagerConfig(4);
    cfg.queue_reg_depth = 1;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

TEST(Eager, PriorityStoreOrdering)
{
    // Without a break, tmp must be the LAST node's value even
    // though later iterations run on different slots concurrently.
    ListWalkParams p;
    p.num_nodes = 50;
    p.eager = true;
    const Workload w = makeListWalk(p);
    for (int slots : {2, 4, 8}) {
        EXPECT_TRUE(runCore(w, eagerConfig(slots)).ok)
            << "slots=" << slots;
    }
}
