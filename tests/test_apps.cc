#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace smtsim;

namespace
{

CoreConfig
slots(int n)
{
    CoreConfig cfg;
    cfg.num_slots = n;
    return cfg;
}

} // namespace

// ----------------------------------------------------------------
// Matrix multiply
// ----------------------------------------------------------------

TEST(Matmul, CorrectOnAllEngines)
{
    MatmulParams p;
    p.n = 8;
    const Workload w = makeMatmul(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runInterp(w, 4).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    for (int s : {1, 2, 4, 8})
        EXPECT_TRUE(runCore(w, slots(s)).ok) << "slots " << s;
}

TEST(Matmul, OddSizesAndMoreSlotsThanRows)
{
    for (int n : {1, 3, 5}) {
        MatmulParams p;
        p.n = n;
        const Workload w = makeMatmul(p);
        EXPECT_TRUE(runCore(w, slots(8)).ok) << "n " << n;
    }
}

TEST(Matmul, ScalesWithThreads)
{
    MatmulParams p;
    p.n = 12;
    const Workload w = makeMatmul(p);
    const Outcome o1 = runCore(w, slots(1));
    const Outcome o4 = runCore(w, slots(4));
    ASSERT_TRUE(o1.ok && o4.ok);
    EXPECT_LT(o4.stats.cycles * 2, o1.stats.cycles);
}

TEST(Matmul, ChecksumRejectsCorruption)
{
    MatmulParams p;
    p.n = 4;
    const Workload w = makeMatmul(p);
    MainMemory mem;
    w.program.loadInto(mem);
    w.init(mem);
    EXPECT_FALSE(w.check(mem, nullptr));    // never ran
}

// ----------------------------------------------------------------
// Binary search
// ----------------------------------------------------------------

TEST(Bsearch, CorrectOnAllEngines)
{
    BsearchParams p;
    p.table_size = 64;
    p.queries_per_thread = 16;
    const Workload w = makeBsearch(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runInterp(w, 3).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    for (int s : {1, 2, 4, 8})
        EXPECT_TRUE(runCore(w, slots(s)).ok) << "slots " << s;
}

TEST(Bsearch, TinyTable)
{
    BsearchParams p;
    p.table_size = 1;
    p.queries_per_thread = 8;
    const Workload w = makeBsearch(p);
    EXPECT_TRUE(runCore(w, slots(4)).ok);
}

TEST(Bsearch, FixedWorkAcrossSlotCounts)
{
    // Total work is slot-count independent; the output must be
    // identical for any S, and multithreading must help this
    // branch-bound code substantially (the paper's motivating
    // scenario: unpredictable branches).
    BsearchParams p;
    const Workload w = makeBsearch(p);
    const Outcome base = runBaseline(w);
    const Outcome o4 = runCore(w, slots(4));
    ASSERT_TRUE(base.ok && o4.ok);
    EXPECT_GT(speedup(base.stats, o4.stats), 2.0);
}

// ----------------------------------------------------------------
// Radiosity
// ----------------------------------------------------------------

TEST(Radiosity, CorrectOnAllEngines)
{
    RadiosityParams p;
    p.num_patches = 12;
    const Workload w = makeRadiosity(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runInterp(w, 4).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    for (int s : {1, 2, 4, 8})
        EXPECT_TRUE(runCore(w, slots(s)).ok) << "slots " << s;
}

TEST(Radiosity, SceneSeedSweep)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        RadiosityParams p;
        p.num_patches = 8;
        p.seed = seed;
        const Workload w = makeRadiosity(p);
        EXPECT_TRUE(runCore(w, slots(4)).ok) << "seed " << seed;
    }
}

TEST(Radiosity, MinimumPatchCount)
{
    RadiosityParams p;
    p.num_patches = 2;
    const Workload w = makeRadiosity(p);
    EXPECT_TRUE(runCore(w, slots(4)).ok);
}

TEST(Radiosity, ScalesWithThreads)
{
    RadiosityParams p;
    p.num_patches = 24;
    const Workload w = makeRadiosity(p);
    const Outcome o1 = runCore(w, slots(1));
    const Outcome o4 = runCore(w, slots(4));
    ASSERT_TRUE(o1.ok && o4.ok);
    EXPECT_LT(o4.stats.cycles * 2, o1.stats.cycles);
}

// ----------------------------------------------------------------
// Cross-application property: determinism
// ----------------------------------------------------------------

TEST(Applications, AllDeterministic)
{
    MatmulParams mp;
    mp.n = 6;
    BsearchParams bp;
    bp.table_size = 32;
    bp.queries_per_thread = 8;
    RadiosityParams rp;
    rp.num_patches = 8;

    const Workload ws[] = {makeMatmul(mp), makeBsearch(bp),
                           makeRadiosity(rp)};
    for (const Workload &w : ws) {
        const Outcome a = runCore(w, slots(4));
        const Outcome b = runCore(w, slots(4));
        ASSERT_TRUE(a.ok && b.ok) << w.name;
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << w.name;
        EXPECT_EQ(a.stats.instructions, b.stats.instructions)
            << w.name;
    }
}

// ----------------------------------------------------------------
// Stencil (ring-barrier synchronization between sweeps)
// ----------------------------------------------------------------

TEST(Stencil, CorrectOnAllEngines)
{
    StencilParams p;
    p.width = 8;
    p.height = 7;
    p.sweeps = 2;
    const Workload w = makeStencil(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runInterp(w, 4).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    for (int s : {1, 2, 3, 4, 8})
        EXPECT_TRUE(runCore(w, slots(s)).ok) << "slots " << s;
}

TEST(Stencil, ManySweepsManyBarriers)
{
    // Each sweep crosses the queue-register ring barrier twice per
    // thread; seven sweeps stress token bookkeeping hard.
    StencilParams p;
    p.width = 6;
    p.height = 6;
    p.sweeps = 7;
    const Workload w = makeStencil(p);
    for (int s : {2, 5, 8})
        EXPECT_TRUE(runCore(w, slots(s)).ok) << "slots " << s;
}

TEST(Stencil, MoreSlotsThanRows)
{
    StencilParams p;
    p.width = 8;
    p.height = 4;       // 2 interior rows only
    p.sweeps = 3;
    const Workload w = makeStencil(p);
    EXPECT_TRUE(runCore(w, slots(8)).ok);
}

TEST(Stencil, OddEvenSweepCountsBothVerify)
{
    for (int sweeps : {1, 2, 3, 4}) {
        StencilParams p;
        p.width = 7;
        p.height = 6;
        p.sweeps = sweeps;
        const Workload w = makeStencil(p);
        EXPECT_TRUE(runCore(w, slots(4)).ok)
            << "sweeps " << sweeps;
    }
}

TEST(Stencil, BarrierPreservesDeterminism)
{
    StencilParams p;
    p.sweeps = 3;
    const Workload w = makeStencil(p);
    const Outcome a = runCore(w, slots(4));
    const Outcome b = runCore(w, slots(4));
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}
