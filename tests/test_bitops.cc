#include <gtest/gtest.h>

#include "base/bitops.hh"

using namespace smtsim;

TEST(Bitops, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeefu, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeefu, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeefu, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xffffffffu, 31, 0), 0xffffffffu);
}

TEST(Bitops, ExtractSingleBit)
{
    EXPECT_EQ(bits(0x80000000u, 31, 31), 1u);
    EXPECT_EQ(bits(0x80000000u, 30, 30), 0u);
    EXPECT_EQ(bits(0x1u, 0, 0), 1u);
}

TEST(Bitops, InsertBasic)
{
    EXPECT_EQ(insertBits(0, 31, 26, 0x3f), 0xfc000000u);
    EXPECT_EQ(insertBits(0xffffffffu, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 15, 0, 0x12345678u), 0x5678u);
}

TEST(Bitops, InsertThenExtractRoundTrip)
{
    for (int hi = 0; hi < 32; hi += 5) {
        for (int lo = 0; lo <= hi; lo += 3) {
            const std::uint32_t v =
                insertBits(0xa5a5a5a5u, hi, lo, 0x7u);
            EXPECT_EQ(bits(v, hi, lo),
                      0x7u & ((hi - lo + 1 >= 3)
                                  ? 0x7u
                                  : ((1u << (hi - lo + 1)) - 1)));
        }
    }
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0x1f, 5), -1);
    EXPECT_EQ(sext(0xf, 5), 15);
    EXPECT_EQ(sext(0, 16), 0);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(Bitops, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(65535, 16));
    EXPECT_FALSE(fitsUnsigned(65536, 16));
    EXPECT_FALSE(fitsUnsigned(-1, 16));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}
