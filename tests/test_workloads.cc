#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "sched/list_scheduler.hh"
#include "sched/standby_scheduler.hh"

using namespace smtsim;

TEST(RayTrace, CorrectOnInterpreter)
{
    RayTraceParams p;
    p.width = 8;
    p.height = 8;
    const Workload w = makeRayTrace(p);
    const Outcome o = runInterp(w, 1);
    EXPECT_TRUE(o.ok) << o.error;
}

TEST(RayTrace, CorrectOnBaseline)
{
    RayTraceParams p;
    p.width = 8;
    p.height = 8;
    const Workload w = makeRayTrace(p);
    EXPECT_TRUE(runBaseline(w).ok);
}

class RayTraceCoreSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RayTraceCoreSweep, CorrectOnCore)
{
    RayTraceParams p;
    p.width = 8;
    p.height = 8;
    const Workload w = makeRayTrace(p);
    CoreConfig cfg;
    cfg.num_slots = GetParam();
    const Outcome o = runCore(w, cfg);
    EXPECT_TRUE(o.ok) << o.error;
}

INSTANTIATE_TEST_SUITE_P(Slots, RayTraceCoreSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(RayTrace, SceneVariations)
{
    for (std::uint64_t seed : {1ull, 2ull, 7ull}) {
        RayTraceParams p;
        p.width = 6;
        p.height = 6;
        p.seed = seed;
        p.num_spheres = 3;
        const Workload w = makeRayTrace(p);
        EXPECT_TRUE(runInterp(w, 1).ok) << "seed " << seed;
    }
}

TEST(RayTrace, ShadowsOffStillCorrect)
{
    RayTraceParams p;
    p.width = 6;
    p.height = 6;
    p.shadows = false;
    const Workload w = makeRayTrace(p);
    CoreConfig cfg;
    cfg.num_slots = 4;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

TEST(RayTrace, MoreThreadsAreFaster)
{
    RayTraceParams p;
    p.width = 12;
    p.height = 12;
    const Workload w = makeRayTrace(p);
    CoreConfig cfg;
    cfg.fus.load_store = 2;
    Cycle prev = kNeverCycle;
    for (int slots : {1, 2, 4}) {
        cfg.num_slots = slots;
        const Outcome o = runCore(w, cfg);
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_LT(o.stats.cycles, prev);
        prev = o.stats.cycles;
    }
}

TEST(RayTrace, SpeedupOverBaselineInPaperBallpark)
{
    RayTraceParams p;
    p.width = 16;
    p.height = 16;
    const Workload w = makeRayTrace(p);
    const Outcome base = runBaseline(w);
    ASSERT_TRUE(base.ok);

    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.fus.load_store = 2;
    const Outcome core = runCore(w, cfg);
    ASSERT_TRUE(core.ok);
    const double s = speedup(base.stats, core.stats);
    // Paper Table 2: 3.72 for this configuration. Accept a band.
    EXPECT_GT(s, 2.5);
    EXPECT_LT(s, 4.5);
}

TEST(Livermore, SequentialCorrectEverywhere)
{
    Lk1Params p;
    p.n = 64;
    const Workload w = makeLivermore1(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    CoreConfig cfg;
    cfg.num_slots = 1;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

class LivermoreParallelSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LivermoreParallelSweep, ParallelCorrectOnCore)
{
    Lk1Params p;
    p.n = 64;
    p.parallel = true;
    const Workload w = makeLivermore1(p);
    CoreConfig cfg;
    cfg.num_slots = GetParam();
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome o = runCore(w, cfg);
    EXPECT_TRUE(o.ok) << o.error;
}

INSTANTIATE_TEST_SUITE_P(Slots, LivermoreParallelSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Livermore, ParallelMatchesInterpreter)
{
    Lk1Params p;
    p.n = 37;       // odd count exercises uneven splits
    p.parallel = true;
    const Workload w = makeLivermore1(p);
    EXPECT_TRUE(runInterp(w, 4).ok);
}

TEST(Livermore, MoreSlotsThanIterations)
{
    Lk1Params p;
    p.n = 3;
    p.parallel = true;
    const Workload w = makeLivermore1(p);
    CoreConfig cfg;
    cfg.num_slots = 8;
    cfg.rotation_mode = RotationMode::Explicit;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

TEST(Livermore, ScheduledBodiesStayCorrect)
{
    const std::vector<Insn> body = lk1LoopBody();

    const ScheduleResult a = listSchedule(body);
    StandbySchedulerConfig bc;
    bc.num_slots = 4;
    const ScheduleResult b = standbySchedule(body, bc);

    Lk1Params p;
    p.n = 48;
    p.parallel = true;
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.rotation_mode = RotationMode::Explicit;

    for (const ScheduleResult *sched : {&a, &b}) {
        const Workload w = makeLivermore1(p, &sched->order);
        const Outcome o = runCore(w, cfg);
        EXPECT_TRUE(o.ok) << o.error;
    }
}

TEST(Livermore, StrategyAImprovesSingleThreadTime)
{
    Lk1Params p;
    p.n = 64;
    p.parallel = true;
    const Workload plain = makeLivermore1(p);
    const ScheduleResult a = listSchedule(lk1LoopBody());
    const Workload sched = makeLivermore1(p, &a.order);

    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome po = runCore(plain, cfg);
    const Outcome so = runCore(sched, cfg);
    ASSERT_TRUE(po.ok && so.ok);
    EXPECT_LT(so.stats.cycles, po.stats.cycles);
}

TEST(Livermore, SaturatesAtMemoryBound)
{
    // 3 loads + 1 store per iteration at issue latency 2 on one
    // load/store unit: >= 8 cycles per iteration no matter how many
    // slots (the paper's stated saturation point).
    Lk1Params p;
    p.n = 128;
    p.parallel = true;
    const Workload w = makeLivermore1(p);
    CoreConfig cfg;
    cfg.num_slots = 8;
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome o = runCore(w, cfg);
    ASSERT_TRUE(o.ok) << o.error;
    const double per_iter =
        static_cast<double>(o.stats.cycles) / p.n;
    EXPECT_GE(per_iter, 8.0);
    EXPECT_LT(per_iter, 14.0);
}

TEST(ListWalk, SequentialCorrectEverywhere)
{
    ListWalkParams p;
    p.num_nodes = 20;
    const Workload w = makeListWalk(p);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    CoreConfig cfg;
    cfg.num_slots = 1;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

TEST(ListWalk, BreakAtEveryEarlyPosition)
{
    for (int b = 0; b < 6; ++b) {
        ListWalkParams p;
        p.num_nodes = 12;
        p.break_at = b;
        const Workload w = makeListWalk(p);
        EXPECT_TRUE(runBaseline(w).ok) << "break " << b;
    }
}

TEST(TokenRing, CleanCorrectAtEverySlotCount)
{
    TokenRingParams p;
    p.rounds = 12;
    const Workload w = makeTokenRing(p);
    for (int threads : {1, 2, 4, 8})
        EXPECT_TRUE(runInterp(w, threads).ok)
            << "threads " << threads;
    CoreConfig cfg;
    cfg.num_slots = 4;
    EXPECT_TRUE(runCore(w, cfg).ok);
}

TEST(TokenRing, CheckerRejectsUnfinishedRing)
{
    const Workload w = makeTokenRing({.rounds = 4, .bug = 0});
    MainMemory mem;
    w.program.loadInto(mem);
    w.init(mem);
    std::string why;
    EXPECT_FALSE(w.check(mem, &why));   // never ran: ok flag 0
    EXPECT_FALSE(why.empty());
}

TEST(Workloads, CheckersRejectCorruptedOutput)
{
    // The result checkers must actually detect wrong answers.
    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    const Workload ray = makeRayTrace(rp);
    MainMemory mem;
    ray.program.loadInto(mem);
    ray.init(mem);
    std::string why;
    EXPECT_FALSE(ray.check(mem, &why));     // never ran
    EXPECT_FALSE(why.empty());

    Lk1Params lp;
    lp.n = 8;
    const Workload lk = makeLivermore1(lp);
    MainMemory lmem;
    lk.program.loadInto(lmem);
    lk.init(lmem);
    EXPECT_FALSE(lk.check(lmem, nullptr));
}
