#include <gtest/gtest.h>

#include "core/processor.hh"
#include "harness/runner.hh"
#include "interp/interpreter.hh"
#include "mem/cache.hh"
#include "trace/synth.hh"

using namespace smtsim;

namespace
{

CacheConfig
cacheCfg(Addr size, Addr line = 32, Cycle penalty = 20)
{
    CacheConfig cfg;
    cfg.size_bytes = size;
    cfg.line_bytes = line;
    cfg.miss_penalty = penalty;
    return cfg;
}

} // namespace

TEST(DirectMapped, ColdMissThenHit)
{
    DirectMappedCache cache(cacheCfg(1024));
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x11f));   // same 32-byte line
    EXPECT_FALSE(cache.access(0x120));  // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(DirectMapped, ConflictEviction)
{
    // 1 KiB direct-mapped, 32-byte lines: addresses 1 KiB apart
    // collide.
    DirectMappedCache cache(cacheCfg(1024));
    EXPECT_FALSE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0400));     // evicts 0x0000
    EXPECT_FALSE(cache.access(0x0000));     // miss again
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(DirectMapped, DistinctSetsCoexist)
{
    DirectMappedCache cache(cacheCfg(1024));
    EXPECT_FALSE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x020));
    EXPECT_TRUE(cache.access(0x000));
    EXPECT_TRUE(cache.access(0x020));
}

TEST(DirectMapped, MissRateAndReset)
{
    DirectMappedCache cache(cacheCfg(256, 32));
    cache.access(0);
    cache.access(0);
    cache.access(0);
    cache.access(0);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.25);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.0);
    EXPECT_FALSE(cache.access(0));
}

TEST(DirectMapped, BadConfigRejected)
{
    EXPECT_THROW(DirectMappedCache c(cacheCfg(0)), PanicError);
    EXPECT_THROW(DirectMappedCache c(cacheCfg(1024, 24)),
                 PanicError);
    EXPECT_THROW(DirectMappedCache c(cacheCfg(16, 32)),
                 PanicError);
}

TEST(SetAssociative, TwoWaysToleratePingPong)
{
    // Addresses 1 KiB apart conflict in a 1 KiB direct-mapped
    // cache but coexist with two ways.
    CacheConfig cfg = cacheCfg(1024);
    cfg.ways = 2;
    DirectMappedCache cache(cfg);
    EXPECT_FALSE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0400));
    EXPECT_TRUE(cache.access(0x0000));
    EXPECT_TRUE(cache.access(0x0400));
    EXPECT_EQ(cache.numSets(), 16);
}

TEST(SetAssociative, LruEvictsLeastRecent)
{
    CacheConfig cfg = cacheCfg(1024);
    cfg.ways = 2;
    DirectMappedCache cache(cfg);
    // Three conflicting lines in a 2-way set.
    EXPECT_FALSE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0400));
    EXPECT_TRUE(cache.access(0x0000));      // refresh 0x0000
    EXPECT_FALSE(cache.access(0x0800));     // evicts 0x0400 (LRU)
    EXPECT_TRUE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x0400));     // gone
}

TEST(SetAssociative, FullyAssociative)
{
    CacheConfig cfg = cacheCfg(128, 32);
    cfg.ways = 4;       // 4 lines, 1 set
    DirectMappedCache cache(cfg);
    EXPECT_EQ(cache.numSets(), 1);
    for (Addr a : {0u, 0x1000u, 0x2000u, 0x3000u})
        EXPECT_FALSE(cache.access(a));
    for (Addr a : {0u, 0x1000u, 0x2000u, 0x3000u})
        EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(0x4000));     // evicts line 0 (LRU)
    EXPECT_FALSE(cache.access(0x0000));
}

TEST(SetAssociative, HigherAssociativityNeverHurtsMissCount)
{
    // On the ray tracer's access stream, 2-way LRU should not miss
    // more than direct-mapped of the same capacity.
    RayTraceParams rp;
    rp.width = 8;
    rp.height = 8;
    const Workload ray = makeRayTrace(rp);

    auto misses_with_ways = [&](int ways) {
        CoreConfig cfg;
        cfg.num_slots = 4;
        cfg.dcache = cacheCfg(512, 32, 20);
        cfg.dcache.ways = ways;
        const Outcome o = runCore(ray, cfg);
        EXPECT_TRUE(o.ok) << o.error;
        return o.stats.dcache_misses;
    };
    EXPECT_LE(misses_with_ways(2), misses_with_ways(1));
}

TEST(FiniteCache, FunctionalResultsUnchanged)
{
    // Caches affect timing only; every output stays bit-identical.
    RayTraceParams rp;
    rp.width = 8;
    rp.height = 8;
    const Workload ray = makeRayTrace(rp);

    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.dcache = cacheCfg(512, 32, 30);
    cfg.icache = cacheCfg(256, 32, 30);
    const Outcome o = runCore(ray, cfg);
    EXPECT_TRUE(o.ok) << o.error;
    EXPECT_GT(o.stats.dcache_misses, 0u);
    EXPECT_GT(o.stats.icache_misses, 0u);
}

TEST(FiniteCache, MissesCostCycles)
{
    RayTraceParams rp;
    rp.width = 8;
    rp.height = 8;
    const Workload ray = makeRayTrace(rp);

    CoreConfig perfect;
    perfect.num_slots = 4;
    const Outcome po = runCore(ray, perfect);
    ASSERT_TRUE(po.ok);

    CoreConfig tiny = perfect;
    tiny.dcache = cacheCfg(256, 32, 40);
    const Outcome to = runCore(ray, tiny);
    ASSERT_TRUE(to.ok) << to.error;
    EXPECT_GT(to.stats.cycles, po.stats.cycles);
}

TEST(FiniteCache, LargerCacheMissesLess)
{
    RayTraceParams rp;
    rp.width = 8;
    rp.height = 8;
    const Workload ray = makeRayTrace(rp);

    std::uint64_t prev_misses = ~0ull;
    for (Addr size : {256u, 1024u, 16384u}) {
        CoreConfig cfg;
        cfg.num_slots = 4;
        cfg.dcache = cacheCfg(size, 32, 40);
        const Outcome o = runCore(ray, cfg);
        ASSERT_TRUE(o.ok) << o.error;
        EXPECT_LE(o.stats.dcache_misses, prev_misses)
            << "size " << size;
        prev_misses = o.stats.dcache_misses;
    }
}

TEST(FiniteCache, IcacheWarmLoopMostlyHits)
{
    // A tight loop fits in even a small instruction cache: after
    // the cold start nearly every fetch hits.
    const Workload w = [] {
        RecurrenceParams p;
        p.n = 200;
        p.variant = RecurrenceVariant::Sequential;
        return makeRecurrence(p);
    }();

    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.icache = cacheCfg(1024, 32, 25);
    const Outcome o = runCore(w, cfg);
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_GT(o.stats.icache_hits, 10 * o.stats.icache_misses);
}

TEST(FiniteCache, EquivalenceWithInterpreterUnderMisses)
{
    SynthParams sp;
    sp.seed = 41;
    sp.iterations = 16;
    sp.parallel = true;
    const Program prog = makeSyntheticKernel(sp);
    const Addr scratch = prog.symbol("scratch");

    MainMemory im;
    prog.loadInto(im);
    InterpConfig icfg;
    icfg.num_threads = 4;
    Interpreter interp(prog, im, icfg);
    ASSERT_TRUE(interp.run().completed);

    MainMemory cm;
    prog.loadInto(cm);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.dcache = cacheCfg(128, 32, 35);
    cfg.icache = cacheCfg(128, 32, 35);
    MultithreadedProcessor cpu(prog, cm, cfg);
    ASSERT_TRUE(cpu.run().finished);

    for (Addr a = scratch; a < scratch + 8 * 64 * 9; a += 4)
        ASSERT_EQ(cm.read32(a), im.read32(a));
}

TEST(FiniteCache, ThreadsShareTheDataCache)
{
    // With more threads touching disjoint data, a small shared
    // cache thrashes: misses grow with the thread count.
    SynthParams sp;
    sp.seed = 43;
    sp.iterations = 32;
    sp.parallel = true;
    const Program prog = makeSyntheticKernel(sp);

    auto misses_for = [&](int slots) {
        MainMemory mem;
        prog.loadInto(mem);
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.dcache = cacheCfg(256, 32, 20);
        MultithreadedProcessor cpu(prog, mem, cfg);
        const RunStats s = cpu.run();
        EXPECT_TRUE(s.finished);
        return s.dcache_misses;
    };
    EXPECT_GT(misses_for(8), misses_for(1));
}
