#include <gtest/gtest.h>

#include "test_common.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

/** Cycles for a straight-line body followed by halt. */
Cycle
cyclesFor(const std::string &body, const BaselineConfig &cfg = {})
{
    return runBaselineAsm("main:\n" + body + "        halt\n", cfg)
        .cycles;
}

} // namespace

TEST(BaselineTiming, IndependentOpsIssueEveryCycle)
{
    const Cycle c4 = cyclesFor(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
)");
    const Cycle c8 = cyclesFor(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
        addi r5, r0, 1
        addi r6, r0, 2
        addi r7, r0, 3
        addi r8, r0, 4
)");
    EXPECT_EQ(c8 - c4, 4u);     // one per cycle
}

// A tail of independent fillers makes the total issue-bound, so
// cycle-count differences expose pure issue-gap changes.
static const char *kFillerTail = R"(
        addi r10, r0, 0
        addi r11, r0, 0
        addi r12, r0, 0
        addi r13, r0, 0
        addi r14, r0, 0
        addi r15, r0, 0
        addi r16, r0, 0
        addi r17, r0, 0
        addi r18, r0, 0
        addi r19, r0, 0
)";

TEST(BaselineTiming, DependentAluOpsAreThreeCyclesApart)
{
    // Section 2.1.2: at least three cycles between I1 and a
    // dependent I2 (result latency 2) -- two extra cycles compared
    // with back-to-back independent issue.
    const Cycle indep = cyclesFor(std::string(R"(
        addi r1, r0, 1
        addi r2, r0, 2
)") + kFillerTail);
    const Cycle dep = cyclesFor(std::string(R"(
        addi r1, r0, 1
        addi r2, r1, 2
)") + kFillerTail);
    EXPECT_EQ(dep - indep, 2u);     // issue gap 3 instead of 1
}

TEST(BaselineTiming, LoadUseGapIsFiveCycles)
{
    const Cycle indep = cyclesFor(std::string(R"(
        lw   r1, 0(r9)
        addi r2, r0, 1
)") + kFillerTail);
    const Cycle dep = cyclesFor(std::string(R"(
        lw   r1, 0(r9)
        addi r2, r1, 1
)") + kFillerTail);
    // Load result latency 4: gap 5 instead of 1.
    EXPECT_EQ(dep - indep, 4u);
}

TEST(BaselineTiming, MulConsumerWaitsSevenCycles)
{
    const Cycle indep = cyclesFor(std::string(R"(
        mul  r1, r9, r9
        addi r2, r0, 1
)") + kFillerTail);
    const Cycle dep = cyclesFor(std::string(R"(
        mul  r1, r9, r9
        addi r2, r1, 1
)") + kFillerTail);
    EXPECT_EQ(dep - indep, 6u);     // gap 7 instead of 1
}

TEST(BaselineTiming, BranchLoopPeriodIsSevenCycles)
{
    // Minimal count-down loop: addi issues at t; bgtz depends on it
    // (3-cycle gap) and resolves at t+3; the 4-cycle branch gap
    // puts the next addi at t+7.
    const auto run = [&](int iters) {
        return runBaselineAsm(
                   "main:   li r1, " + std::to_string(iters) +
                   "\nloop:   addi r1, r1, -1\n"
                   "        bgtz r1, loop\n"
                   "        halt\n")
            .cycles;
    };
    const Cycle c10 = run(10);
    const Cycle c20 = run(20);
    EXPECT_EQ((c20 - c10) / 10, 7u);
}

TEST(BaselineTiming, UntakenBranchIsCheaperThanTaken)
{
    // Predict-not-taken: the fall-through stream keeps flowing for
    // an untaken branch; a taken branch flushes and pays the gap.
    // (Both target the next instruction so the executed paths are
    // identical.)
    // Taken: skips one instruction, pays the 4-cycle gap.
    const Cycle taken = cyclesFor(std::string(R"(
        addi r9, r0, 1
        beq  r9, r9, next
        addi r2, r0, 7
next:   addi r1, r0, 1
)") + kFillerTail);
    // Untaken: executes one more instruction, no gap.
    const Cycle untaken = cyclesFor(std::string(R"(
        addi r9, r0, 1
        bne  r9, r9, next
        addi r2, r0, 7
next:   addi r1, r0, 1
)") + kFillerTail);
    // Gap of 4 on the taken path minus the 2 issue slots the
    // untaken path spends reaching the same point.
    EXPECT_GT(taken, untaken);
    EXPECT_EQ(taken - untaken, 2u);
}

TEST(BaselineTiming, LoadStoreIssueLatencyTwo)
{
    // Independent loads on one LS unit: one every 2 cycles.
    const Cycle two = cyclesFor(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
)");
    const Cycle four = cyclesFor(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
        lw r3, 8(r9)
        lw r4, 12(r9)
)");
    EXPECT_EQ(four - two, 4u);      // 2 cycles per extra load
}

TEST(BaselineTiming, SecondLoadStoreUnitDoublesThroughput)
{
    BaselineConfig cfg;
    cfg.fus.load_store = 2;
    const Cycle two = cyclesFor(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
)",
                                cfg);
    const Cycle four = cyclesFor(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
        lw r3, 8(r9)
        lw r4, 12(r9)
)",
                                 cfg);
    EXPECT_EQ(four - two, 2u);      // 1 cycle per extra load
}

TEST(BaselineTiming, WidthTwoIssuesIndependentPairs)
{
    BaselineConfig w1;
    BaselineConfig w2;
    w2.width = 2;
    w2.fus.int_alu = 2;
    const std::string body = R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        addi r4, r0, 4
        addi r5, r0, 5
        addi r6, r0, 6
        addi r7, r0, 7
        addi r8, r0, 8
)";
    const Cycle c1 = cyclesFor(body, w1);
    const Cycle c2 = cyclesFor(body, w2);
    EXPECT_LT(c2, c1);
    EXPECT_GE(c1 - c2, 3u);
}

TEST(BaselineTiming, WidthRespectsDependences)
{
    BaselineConfig w4;
    w4.width = 4;
    w4.fus.int_alu = 4;
    // A fully serial chain gains nothing from width.
    const std::string chain = R"(
        addi r1, r0, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
)";
    const Cycle wide = cyclesFor(chain, w4);
    const Cycle narrow = cyclesFor(chain);
    EXPECT_EQ(wide, narrow);
}

TEST(BaselineFunc, MatchesInterpreterOnControlFlow)
{
    const std::string prog = R"(
main:   li   r1, 25
        li   r2, 0
        li   r5, 3
loop:   remq r3, r1, r5
        bne  r3, r0, skip
        add  r2, r2, r1
skip:   addi r1, r1, -1
        bgtz r1, loop
        la   r4, out
        sw   r2, 0(r4)
        halt
        .data
out:    .word 0
)";
    MainMemory bm, im;
    const RunStats bs = runBaselineAsm(prog, {}, &bm);
    const InterpResult ir = runInterpAsm(prog, 1, &im);
    EXPECT_TRUE(bs.finished);
    EXPECT_EQ(bs.instructions, ir.steps);
    EXPECT_EQ(bm.read32(kDefaultDataBase),
              im.read32(kDefaultDataBase));
    // sum of multiples of 3 up to 25 = 3+6+...+24.
    EXPECT_EQ(bm.read32(kDefaultDataBase), 108u);
}

TEST(BaselineFunc, StoreLoadForwardThroughMemory)
{
    MainMemory mem;
    runBaselineAsm(R"(
main:   la   r1, buf
        addi r2, r0, 77
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        addi r3, r3, 1
        sw   r3, 4(r1)
        halt
        .data
buf:    .word 0, 0
)",
                   {}, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 4), 78u);
}

TEST(BaselineFunc, WawOrderPreserved)
{
    // Long-latency write followed by a short-latency write to the
    // same register: the later instruction must win.
    MainMemory mem;
    runBaselineAsm(R"(
main:   li   r4, 6
        li   r5, 7
        mul  r1, r4, r5     # result 6 cycles
        addi r1, r0, 5      # overwrites
        la   r2, out
        sw   r1, 0(r2)
        halt
        .data
out:    .word 0
)",
                   {}, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 5u);
}

TEST(BaselineFunc, WidthPreservesSemantics)
{
    const std::string prog = R"(
main:   li   r1, 12
        li   r2, 1
        li   r6, 0
loop:   mul  r2, r2, r1
        remq r3, r2, r1
        add  r6, r6, r3
        addi r1, r1, -1
        bgtz r1, loop
        la   r4, out
        sw   r2, 0(r4)
        sw   r6, 4(r4)
        halt
        .data
out:    .word 0, 0
)";
    MainMemory m1, m4;
    BaselineConfig w4;
    w4.width = 4;
    runBaselineAsm(prog, {}, &m1);
    runBaselineAsm(prog, w4, &m4);
    EXPECT_EQ(m1.read32(kDefaultDataBase),
              m4.read32(kDefaultDataBase));
    EXPECT_EQ(m1.read32(kDefaultDataBase + 4),
              m4.read32(kDefaultDataBase + 4));
}

TEST(BaselineStats, FuAccounting)
{
    const RunStats s = runBaselineAsm(R"(
main:   addi r1, r0, 1
        fadd f1, f2, f3
        lw   r2, 0(r9)
        sw   r2, 4(r9)
        beq  r0, r0, next
next:   halt
)");
    EXPECT_EQ(s.fu_grants[static_cast<int>(FuClass::IntAlu)], 1u);
    EXPECT_EQ(s.fu_grants[static_cast<int>(FuClass::FpAdd)], 1u);
    EXPECT_EQ(s.fu_grants[static_cast<int>(FuClass::LoadStore)],
              2u);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.branches, 1u);
    EXPECT_EQ(s.instructions, 6u);
    // Load/store busy = 2 grants * issue latency 2.
    EXPECT_EQ(s.fu_busy[static_cast<int>(FuClass::LoadStore)], 4u);
}

TEST(BaselineStats, BudgetExhaustionReported)
{
    BaselineConfig cfg;
    cfg.max_cycles = 100;
    const RunStats s =
        runBaselineAsm("main: j main\n", cfg);
    EXPECT_FALSE(s.finished);
    EXPECT_EQ(s.cycles, 100u);
}
