/**
 * @file
 * Shared helpers for the smtsim test suite.
 */

#ifndef SMTSIM_TESTS_TEST_COMMON_HH
#define SMTSIM_TESTS_TEST_COMMON_HH

#include <string>
#include <string_view>

#include "asmr/assembler.hh"
#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "interp/interpreter.hh"
#include "mem/memory.hh"

namespace smtsim::test
{

/** A loaded program + memory, ready to run on any engine. */
struct Machine
{
    Program prog;
    MainMemory mem;

    explicit Machine(std::string_view source)
        : prog(assemble(source))
    {
        prog.loadInto(mem);
    }
};

/** Run @p source on the baseline; returns stats. */
inline RunStats
runBaselineAsm(std::string_view source,
               const BaselineConfig &cfg = {},
               MainMemory *mem_out = nullptr)
{
    Machine m(source);
    BaselineProcessor cpu(m.prog, m.mem, cfg);
    RunStats stats = cpu.run();
    if (mem_out)
        *mem_out = m.mem;
    return stats;
}

/** Run @p source on the multithreaded core; returns stats. */
inline RunStats
runCoreAsm(std::string_view source, const CoreConfig &cfg = {},
           MainMemory *mem_out = nullptr)
{
    Machine m(source);
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    RunStats stats = cpu.run();
    if (mem_out)
        *mem_out = m.mem;
    return stats;
}

/** Run @p source on the functional interpreter. */
inline InterpResult
runInterpAsm(std::string_view source, int threads = 1,
             MainMemory *mem_out = nullptr)
{
    Machine m(source);
    InterpConfig cfg;
    cfg.num_threads = threads;
    Interpreter interp(m.prog, m.mem, cfg);
    InterpResult result = interp.run();
    if (mem_out)
        *mem_out = m.mem;
    return result;
}

} // namespace smtsim::test

#endif // SMTSIM_TESTS_TEST_COMMON_HH
