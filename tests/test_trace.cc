#include <sstream>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "core/processor.hh"
#include "interp/interpreter.hh"
#include "trace/synth.hh"
#include "trace/trace.hh"

using namespace smtsim;

TEST(TraceTest, RecordsEveryInstruction)
{
    SynthParams p;
    p.seed = 3;
    p.iterations = 8;
    p.parallel = false;
    const Program prog = makeSyntheticKernel(p);

    MainMemory mem;
    prog.loadInto(mem);
    const Trace trace = recordTrace(prog, mem, 1);

    MainMemory mem2;
    prog.loadInto(mem2);
    Interpreter interp(prog, mem2);
    EXPECT_EQ(trace.size(), interp.run().steps);
}

TEST(TraceTest, SaveLoadRoundTrip)
{
    SynthParams p;
    p.seed = 4;
    p.iterations = 4;
    p.parallel = false;
    const Program prog = makeSyntheticKernel(p);
    MainMemory mem;
    prog.loadInto(mem);
    const Trace trace = recordTrace(prog, mem, 1);

    std::stringstream buf;
    trace.save(buf);
    const Trace loaded = Trace::load(buf);
    ASSERT_EQ(loaded.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded.records()[i].pc, trace.records()[i].pc);
        EXPECT_EQ(loaded.records()[i].word,
                  trace.records()[i].word);
        EXPECT_EQ(loaded.records()[i].tid, trace.records()[i].tid);
    }
}

TEST(TraceTest, TruncatedLoadFails)
{
    std::stringstream buf;
    buf.write("\x05\x00\x00", 3);
    EXPECT_THROW(Trace::load(buf), FatalError);
}

TEST(TraceTest, MixSumsToTotal)
{
    SynthParams p;
    p.seed = 9;
    p.iterations = 16;
    p.parallel = true;
    const Program prog = makeSyntheticKernel(p);
    MainMemory mem;
    prog.loadInto(mem);
    const Trace trace = recordTrace(prog, mem, 4);

    const InstructionMix mix = analyzeMix(trace);
    EXPECT_EQ(mix.total, trace.size());
    std::uint64_t sum = mix.branches + mix.thread_ctl;
    for (int c = 0; c < kNumFuClasses; ++c)
        sum += mix.by_class[c];
    EXPECT_EQ(sum, mix.total);
    EXPECT_GT(mix.fraction(FuClass::IntAlu), 0.0);
    EXPECT_GT(mix.fraction(FuClass::LoadStore), 0.0);
}

TEST(TraceTest, MultithreadTraceTagsThreads)
{
    SynthParams p;
    p.seed = 10;
    p.iterations = 4;
    p.parallel = true;
    const Program prog = makeSyntheticKernel(p);
    MainMemory mem;
    prog.loadInto(mem);
    const Trace trace = recordTrace(prog, mem, 3);

    bool seen[3] = {false, false, false};
    for (const TraceRecord &r : trace.records()) {
        ASSERT_LT(r.tid, 3);
        seen[r.tid] = true;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(SynthTest, DeterministicInSeed)
{
    SynthParams p;
    p.seed = 42;
    const Program a = makeSyntheticKernel(p);
    const Program b = makeSyntheticKernel(p);
    EXPECT_EQ(a.text, b.text);

    p.seed = 43;
    const Program c = makeSyntheticKernel(p);
    EXPECT_NE(a.text, c.text);
}

TEST(SynthTest, MixWeightsSteerGeneration)
{
    SynthParams fp_heavy;
    fp_heavy.seed = 5;
    fp_heavy.parallel = false;
    fp_heavy.w_int_alu = 0.05;
    fp_heavy.w_load = 0.05;
    fp_heavy.w_store = 0.05;
    fp_heavy.w_fp_add = 0.5;
    fp_heavy.w_fp_mul = 0.35;
    const Program prog = makeSyntheticKernel(fp_heavy);
    MainMemory mem;
    prog.loadInto(mem);
    const InstructionMix mix = analyzeMix(recordTrace(prog, mem));
    EXPECT_GT(mix.fraction(FuClass::FpAdd) +
                  mix.fraction(FuClass::FpMul),
              mix.fraction(FuClass::IntAlu));
}

TEST(SynthTest, RunsOnAllEngines)
{
    SynthParams p;
    p.seed = 6;
    p.iterations = 8;
    p.parallel = true;
    const Program prog = makeSyntheticKernel(p);

    MainMemory bm;
    prog.loadInto(bm);
    BaselineProcessor base(prog, bm);
    EXPECT_TRUE(base.run().finished);

    MainMemory cm;
    prog.loadInto(cm);
    CoreConfig cfg;
    cfg.num_slots = 4;
    MultithreadedProcessor core(prog, cm, cfg);
    EXPECT_TRUE(core.run().finished);
}
