#include <gtest/gtest.h>

#include "base/strutil.hh"

using namespace smtsim;

TEST(Strutil, Trim)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("\t\n x \r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strutil, Split)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strutil, SplitEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Strutil, SplitSingle)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strutil, ToLower)
{
    EXPECT_EQ(toLower("AbC123"), "abc123");
    EXPECT_EQ(toLower(""), "");
}

TEST(Strutil, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(Strutil, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.5, 2), "1.50");
    EXPECT_EQ(formatDouble(-0.125, 3), "-0.125");
    EXPECT_EQ(formatDouble(3.14159, 1), "3.1");
}
