#include <gtest/gtest.h>

#include "test_common.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

Cycle
coreCycles(const std::string &body, const CoreConfig &cfg = {})
{
    return runCoreAsm("main:\n" + body + "        halt\n", cfg)
        .cycles;
}

const char *kFillerTail = R"(
        addi r10, r0, 0
        addi r11, r0, 0
        addi r12, r0, 0
        addi r13, r0, 0
        addi r14, r0, 0
        addi r15, r0, 0
        addi r16, r0, 0
        addi r17, r0, 0
        addi r18, r0, 0
        addi r19, r0, 0
)";

} // namespace

TEST(CoreTiming, DependentAluOpsAreThreeCyclesApart)
{
    // The multithreaded pipeline preserves the base machine's
    // 3-cycle producer-consumer distance (section 2.1.2).
    CoreConfig cfg;
    cfg.num_slots = 1;
    const Cycle indep = coreCycles(std::string(R"(
        addi r1, r0, 1
        addi r2, r0, 2
)") + kFillerTail,
                                   cfg);
    const Cycle dep = coreCycles(std::string(R"(
        addi r1, r0, 1
        addi r2, r1, 2
)") + kFillerTail,
                                 cfg);
    EXPECT_EQ(dep - indep, 2u);
}

TEST(CoreTiming, LoadUseGapIsFiveCycles)
{
    CoreConfig cfg;
    cfg.num_slots = 1;
    const Cycle indep = coreCycles(std::string(R"(
        lw   r1, 0(r9)
        addi r2, r0, 1
)") + kFillerTail,
                                   cfg);
    const Cycle dep = coreCycles(std::string(R"(
        lw   r1, 0(r9)
        addi r2, r1, 1
)") + kFillerTail,
                                 cfg);
    EXPECT_EQ(dep - indep, 4u);
}

TEST(CoreTiming, BranchLoopPeriodIsEightCycles)
{
    // addi at t; dependent bgtz resolves at t+3; branch gap 5
    // (one more than the base RISC, section 2.1.2) puts the next
    // addi at t+8.
    const auto run = [&](int iters) {
        CoreConfig cfg;
        cfg.num_slots = 1;
        return runCoreAsm("main:   li r1, " +
                              std::to_string(iters) +
                              "\nloop:   addi r1, r1, -1\n"
                              "        bgtz r1, loop\n"
                              "        halt\n",
                          cfg)
            .cycles;
    };
    const Cycle c10 = run(10);
    const Cycle c20 = run(20);
    EXPECT_EQ((c20 - c10) / 10, 8u);
}

TEST(CoreTiming, SingleThreadSlowerThanBaseRisc)
{
    // The deeper pipeline damages single-thread performance on
    // branchy code; that is the paper's motivation for running
    // several threads.
    const std::string prog = R"(
main:   li   r1, 50
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig cfg;
    cfg.num_slots = 1;
    const Cycle core = runCoreAsm(prog, cfg).cycles;
    const Cycle base = runBaselineAsm(prog).cycles;
    EXPECT_GT(core, base);
}

TEST(CoreTiming, LoadStoreIssueLatencyTwo)
{
    CoreConfig cfg;
    cfg.num_slots = 1;
    const Cycle two = coreCycles(std::string(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
)") + kFillerTail,
                                 cfg);
    const Cycle six = coreCycles(std::string(R"(
        lw r1, 0(r9)
        lw r2, 4(r9)
        lw r3, 8(r9)
        lw r4, 12(r9)
        lw r5, 16(r9)
        lw r6, 20(r9)
)") + kFillerTail,
                                 cfg);
    EXPECT_EQ(six - two, 8u);   // 2 cycles per extra load
}

TEST(CoreTiming, StandbyStationsLetOtherClassesProceed)
{
    // Two threads hammer the single shifter; with standby stations
    // the loser keeps feeding its ALU instructions, without them
    // its whole decode unit stalls (section 2.1.1).
    const std::string prog = R"(
main:   li   r1, 40
        fastfork
loop:   sll  r2, r1, 1
        add  r3, r1, r1
        add  r4, r1, r1
        sll  r5, r1, 2
        add  r6, r1, r1
        add  r7, r1, r1
        addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig with;
    with.num_slots = 2;
    CoreConfig without = with;
    without.standby_enabled = false;

    const RunStats ws = runCoreAsm(prog, with);
    const RunStats ns = runCoreAsm(prog, without);
    EXPECT_LE(ws.cycles, ns.cycles);
    EXPECT_GT(ns.standby_stalls, 0u);
}

TEST(CoreTiming, TwoThreadsShareOneAluFairly)
{
    // A straight-line ALU-saturating thread uses the single shared
    // ALU at ~100%; adding a second identical thread doubles the
    // work on a saturated unit, so time roughly doubles (Figure 1's
    // utilization argument, run in reverse).
    std::string body;
    for (int i = 0; i < 120; ++i) {
        body += "        addi r" + std::to_string(2 + i % 8) +
                ", r0, 1\n";
    }
    const std::string one = "main:\n" + body + "        halt\n";
    const std::string two =
        "main:   fastfork\n" + body + "        halt\n";
    CoreConfig c1;
    c1.num_slots = 1;
    CoreConfig c2;
    c2.num_slots = 2;
    const Cycle t1 = runCoreAsm(one, c1).cycles;
    const Cycle t2 = runCoreAsm(two, c2).cycles;
    const double ratio =
        static_cast<double>(t2) / static_cast<double>(t1);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.3);
}

TEST(CoreTiming, ParallelThreadsHideBranchDelay)
{
    // Four branch-bound threads on one processor: branch bubbles of
    // one thread are filled by the others, so total time grows far
    // less than 4x (the paper's central claim).
    const std::string loop_body =
        "loop:   addi r2, r2, 1\n"
        "        addi r1, r1, -1\n"
        "        bgtz r1, loop\n"
        "        halt\n";
    const std::string one = "main:   li r1, 64\n" + loop_body;
    const std::string four =
        "main:   li r1, 64\n        fastfork\n" + loop_body;

    CoreConfig c1;
    c1.num_slots = 1;
    CoreConfig c4;
    c4.num_slots = 4;
    const Cycle t1 = runCoreAsm(one, c1).cycles;
    const Cycle t4 = runCoreAsm(four, c4).cycles;
    // 4x the work in less than 1.8x the time.
    EXPECT_LT(static_cast<double>(t4),
              1.8 * static_cast<double>(t1));
}

TEST(CoreTiming, SimultaneousBranchesContendForFetchUnit)
{
    // "It could become more than five if some threads encounter
    // branches at the same time": with many branch-only threads on
    // a shared fetch unit, per-thread loop period exceeds 8.
    const std::string prog = R"(
main:   li   r1, 64
        fastfork
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig shared;
    shared.num_slots = 4;
    CoreConfig priv = shared;
    priv.private_icache = true;

    const Cycle ts = runCoreAsm(prog, shared).cycles;
    const Cycle tp = runCoreAsm(prog, priv).cycles;
    // Private fetch units remove the contention.
    EXPECT_LT(tp, ts);
}

TEST(CoreTiming, PrivateIcacheBarelyHelpsMixedCode)
{
    // Section 3.2: private instruction caches provide only a slight
    // speed-up on real code (1.79 -> 1.80 in the paper).
    const std::string prog = R"(
main:   li   r1, 64
        fastfork
loop:   add  r2, r2, r1
        sll  r3, r1, 2
        lw   r4, 0(r9)
        add  r5, r5, r2
        xor  r6, r6, r3
        addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig shared;
    shared.num_slots = 2;
    CoreConfig priv = shared;
    priv.private_icache = true;
    const Cycle ts = runCoreAsm(prog, shared).cycles;
    const Cycle tp = runCoreAsm(prog, priv).cycles;
    EXPECT_LE(tp, ts);
    // Within 10% on this branchy microkernel; the ray-tracing bench
    // (bench_private_icache) shows the paper's sub-1% gap.
    EXPECT_LT(static_cast<double>(ts - tp),
              0.10 * static_cast<double>(ts));
}

TEST(CoreTiming, SecondLoadStoreUnitRelievesSaturation)
{
    const std::string prog = R"(
main:   li   r1, 32
        fastfork
        tid  r9
        sll  r9, r9, 8
loop:   lw   r2, 0(r9)
        lw   r3, 4(r9)
        sw   r2, 8(r9)
        addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig one;
    one.num_slots = 4;
    CoreConfig two = one;
    two.fus.load_store = 2;
    const RunStats s1 = runCoreAsm(prog, one);
    const RunStats s2 = runCoreAsm(prog, two);
    EXPECT_LT(s2.cycles, s1.cycles);
    // With one unit the load/store unit is the clear bottleneck.
    EXPECT_GT(s1.unitUtilization(FuClass::LoadStore, 0), 80.0);
}

TEST(CoreTiming, RotationIntervalHasMinorEffect)
{
    // Section 3.2: the rotation interval did not much influence
    // performance.
    const std::string prog = R"(
main:   li   r1, 48
        fastfork
loop:   add  r2, r2, r1
        lw   r3, 0(r9)
        sll  r4, r1, 1
        addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig cfg;
    cfg.num_slots = 4;
    Cycle lo = kNeverCycle, hi = 0;
    for (int interval : {1, 2, 8, 64, 256}) {
        cfg.rotation_interval = interval;
        const Cycle t = runCoreAsm(prog, cfg).cycles;
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    EXPECT_LT(static_cast<double>(hi - lo),
              0.10 * static_cast<double>(lo));
}

TEST(CoreTiming, InstructionWindowWidthTwoHelpsIlpCode)
{
    const std::string prog = R"(
main:   li   r1, 64
loop:   add  r2, r2, r1
        sll  r3, r1, 1
        xor  r4, r4, r1
        sll  r5, r1, 2
        addi r1, r1, -1
        bgtz r1, loop
        halt
)";
    CoreConfig d1;
    d1.num_slots = 1;
    CoreConfig d2 = d1;
    d2.width = 2;
    const Cycle t1 = runCoreAsm(prog, d1).cycles;
    const Cycle t2 = runCoreAsm(prog, d2).cycles;
    EXPECT_LT(t2, t1);
}

TEST(CoreTiming, DetailStallCountersPopulated)
{
    Machine m(R"(
main:   lw   r1, 0(r9)
        add  r2, r1, r1
        halt
)");
    CoreConfig cfg;
    cfg.num_slots = 1;
    MultithreadedProcessor cpu(m.prog, m.mem, cfg);
    cpu.run();
    EXPECT_GT(cpu.detail().get("stall.operands"), 0u);
}
