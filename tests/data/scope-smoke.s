# Scope/checkpoint smoke program (CI "scope-smoke" job and local
# runs): every thread slot repeatedly smooths its own slice of a
# shared grid — long enough (a few thousand cycles at 4 slots) to
# checkpoint mid-run, restore, and compare pipeline views.
        .text
main:   fastfork
        tid  r1
        li   r2, 200        # outer iterations
outer:  la   r3, grid
        sll  r4, r1, 4      # slice offset = tid * 16 bytes
        add  r3, r3, r4
        li   r5, 3          # words per slice
inner:  lw   r6, 0(r3)
        lw   r7, 4(r3)
        add  r6, r6, r7
        sra  r6, r6, 1
        sw   r6, 0(r3)
        addi r3, r3, 4
        addi r5, r5, -1
        bgtz r5, inner
        addi r2, r2, -1
        bgtz r2, outer
        halt
        .data
grid:   .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17
