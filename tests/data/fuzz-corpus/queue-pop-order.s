# smtsim-fuzz divergence repro
# Regression: dual-issue (width=2) let a younger queue-register
# read issue past a blocked older one, popping the FIFO out of
# program order. Thread 1's back-to-back `sf f8` / `fmov f7, f8`
# received -0.0 where the interpreter received +0.0.
#! ref engine=interp slots=4 ff=1 cache=0 standby=1 width=1 rot=implicit interval=8 remote=0
#! cfg engine=core slots=4 ff=1 cache=0 standby=1 width=2 rot=implicit interval=8 remote=0
#! mask-queue-regs 1
# divergence: thread 1 f7: ref bits 0x0 vs 0x8000000000000000
# instructions: 14
# smtsim-fuzz generated program
# seed: 4533825706345991893
        .text
main:
        fastfork
        tid r5
        nslot r6
        sll r7, r5, 8
        add r1, r1, r7
        qenf f8, f9
        fneg f1, f4
        fmov f9, f2
        fmov f9, f1
        fadd f9, f4, f6
        sf f8, 32(r1)
        sf f8, 32(r1)
        fmov f7, f8
        halt
        .data
priv:   .space 2048
table:  .word 5, 3, 2, 1535693149
        .word 8, 2321005595, 3, 3407988424
        .word 2186073881, 14, 1095163244, 3366241876
        .word 1, 11, 2, 14
ftab:  .float -0.3622193542212786, -2.6758368839430489, 0.58696637068504831, 0.40393680904386819
        .float -1.6875892467379376, -0.14106335386036761, 1.8950709912216741, 3.0827512153786119
