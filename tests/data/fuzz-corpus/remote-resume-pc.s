# smtsim-fuzz divergence repro
# Regression: a data-absence trap taken while a fetch block was
# in flight resumed at fetch_addr, which had already advanced
# past the (cancelled) block -- skipping up to a fetch block of
# instructions. Here the core retired 7 of 15 instructions.
#! ref engine=interp slots=4 ff=1 cache=0 standby=1 width=1 rot=implicit interval=8 remote=0
#! cfg engine=core slots=4 ff=1 cache=0 standby=1 width=1 rot=implicit interval=8 remote=1
#! mask-queue-regs 0
# divergence: retired-instruction mismatch: ref 15 vs 7
# instructions: 16
# smtsim-fuzz generated program
# seed: 11932312614930163787
        .text
main:
        la r2, table
        slti r8, r14, 189
        sw r5, 32(r1)
        lw r13, 16(r2)
        bne r11, r8, L0
        xor r15, r13, r0
L0:
        addi r16, r0, 1
L1:
        xori r14, r0, 34786
        or r11, r0, r10
        xor r12, r5, r9
        srl r8, r11, 27
        sra r12, r13, 26
        addi r16, r16, -1
        bgtz r16, L1
        halt
        .data
priv:   .space 2048
table:  .word 14, 111541071, 1751595862, 3824179314
        .word 258691722, 3505066452, 6, 7
        .word 2153776386, 0, 0, 0
        .word 2301515866, 15, 8, 8
ftab:  .float -2.7408327032260154, -1.006250140096169, 0.06498727161009743, -2.9075265211995802
        .float 2.6507236355123025, -0.47685745217971665, 1.6192995320338683, 3.721654589331342
