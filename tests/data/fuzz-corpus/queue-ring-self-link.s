# smtsim-fuzz divergence repro
# Canary: queue-ring link topology. Each thread sends its TID and
# receives its predecessor's; a self-link (or any mis-wired ring)
# hands thread 0 its own 0 instead of thread 1's 1.
#! ref engine=interp slots=2 ff=1 cache=0 standby=1 width=1 rot=implicit interval=8 remote=0
#! cfg engine=core slots=2 ff=1 cache=1 standby=1 width=1 rot=implicit interval=8 remote=0
#! mask-queue-regs 1
# divergence: thread 0 r14: ref 1 vs 0
# instructions: 9
# smtsim-fuzz generated program
# seed: 5180492295206395165
        .text
main:
        fastfork
        tid r5
        nslot r6
        sll r7, r5, 8
        add r1, r1, r7
        qen r20, r21
        add r21, r5, r0
        add r14, r20, r0
        halt
        .data
priv:   .space 2048
table:  .word 614896546, 193946970, 12, 4246606667
        .word 12, 11, 2557529764, 10
        .word 14, 2890874610, 2759462602, 6
        .word 4, 136278989, 7, 13
ftab:  .float 1.9201034941818031, 2.8070162503976235, 3.2121409529718195, 3.7369285718341008
        .float -1.3458591896678325, 1.9980028787501061, -2.2264957495375048, -1.9484670830387598
