# Clean negative for Q009: the same guarded-seeder shape as
# queue-wait-cycle.s, but the guard is tid == 0 -- feasible in slot
# 0, whose projection really does push before popping. One seeded
# token keeps the whole ring live, so no diagnostic may fire.
#! clean
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        bne r10, r0, loop
        addi r21, r0, 7         # slot 0 seeds the ring
loop:
        add r3, r20, r0
        addi r21, r3, 1
        halt
