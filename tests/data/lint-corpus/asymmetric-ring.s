# Clean negative for Q011/Q012: slot rates differ (even slots pop 1
# / push 2, odd slots pop 2 / push 1) yet every individual link is
# balanced -- an even producer's 2 pushes meet an odd consumer's 2
# pops and vice versa. The rate check compares per-link, not
# per-slot, so this must stay diagnostic-free.
#! clean
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        andi r12, r10, 1        # slot parity picks the role
        addi r21, r0, 1         # every slot seeds one value
        addi r16, r0, 8
loop:
        bne r12, r0, odd
        add r3, r20, r0         # even: pop 1
        addi r21, r3, 1         # push 2
        addi r21, r3, 2
        j latch
odd:
        add r3, r20, r0         # odd: pop 2
        add r4, r20, r0
        addi r21, r4, 1         # push 1
latch:
        addi r16, r16, -1
        bne r16, r0, loop
        halt
