# Q009: wait-for cycle. The seeding push is guarded by tid == nslot,
# which no slot ever satisfies, so the per-slot projections prove
# every slot's first real queue action is the pop -- all links stay
# empty and the ring deadlocks. The push-first path keeps the older
# path-insensitive Q007 silent; only the cross-slot pass sees it.
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        nslot r11
        beq r10, r11, seeder
loop:
        add r3, r20, r0         #! expect Q009
        addi r21, r3, 1
        halt
seeder:
        addi r21, r0, 7
        j loop
