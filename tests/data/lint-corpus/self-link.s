# Q003: mapping the same register as both the read and the write
# port would make every pop consume the thread's own push; the
# hardware (and the interpreter) reject the pair outright.
        .text
main:
        qen r20, r20            #! expect Q003
        halt
