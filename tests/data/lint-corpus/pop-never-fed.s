# Q002: the thread pops from its queue port, but no instruction
# anywhere pushes. Every slot runs this same code, so the upstream
# link is never fed and the first pop blocks forever.
        .text
main:
        qen r20, r21
        fastfork
        add r3, r20, r0         #! expect Q002
        halt
