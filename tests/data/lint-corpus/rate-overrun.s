# Q012: overrun ring, the mirror of rate-starvation.s. Slot 0
# pushes 1 / pops 2 while slots 1..3 push 2 / pop 1: the links
# 1->2 and 2->3 gain one value per iteration, exceed the FIFO
# depth, and the producers block on a full link.
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        addi r21, r0, 1         # seed
        addi r16, r0, 8
loop:
        bne r10, r0, follower
        add r3, r20, r0         # slot 0: pop 2
        add r4, r20, r0
        addi r21, r4, 1         # push 1
        j latch
follower:
        add r3, r20, r0         # slots 1..3: pop 1
        addi r21, r3, 1         #! expect Q012
        addi r21, r3, 2         # slots 1..3: push 2
latch:
        addi r16, r16, -1
        bne r16, r0, loop
        halt
