# Q001: every iteration pops two values from the upstream link but
# pushes only one downstream; since all slots run the same loop the
# ring drains and every thread ends up blocked in a pop.
        .text
main:
        qenf f20, f21
        itof f1, r0
        fmov f21, f1            # seed one value downstream
        fastfork
loop:
        fmov f2, f20            #! expect Q001
        fmov f3, f20
        fadd f4, f2, f3
        fmov f21, f4
        j loop
