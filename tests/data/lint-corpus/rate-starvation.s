# Q011: rate-skewed ring. Slot 0 pops 1 / pushes 2 per iteration
# while slots 1..3 pop 2 / push 1, so the links 1->2 and 2->3 are
# drained faster than they are fed and the consumers starve. Every
# path through the loop is queue-balanced in the interval sense, so
# only the per-slot rate analysis catches it.
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        addi r21, r0, 1         # seed one value downstream
        addi r16, r0, 8
loop:
        bne r10, r0, follower
        add r3, r20, r0         # slot 0: pop 1
        addi r21, r3, 1         # push 2
        addi r21, r3, 2
        j latch
follower:
        add r3, r20, r0         #! expect Q011
        add r4, r20, r0         # slots 1..3: pop 2
        addi r21, r4, 1         # push 1
latch:
        addi r16, r16, -1
        bne r16, r0, loop
        halt
