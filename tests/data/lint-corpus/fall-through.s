# C002: the program has no halt on the fall-through path, so
# execution runs sequentially past the last text word and the
# engines fatal on the stray fetch.
        .text
main:
        tid r1
        beq r1, r0, done
        addi r2, r0, 5
done:
        nop                     #! expect C002
