# D001: r4 is written only on the tid!=0 path, so the read after
# the join sees either 7 or the architectural zero depending on
# which slot runs this -- the classic inconsistent-init bug.
#
# Annotation format: an expect marker naming the diagnostic ID sits
# on the line it must point at; tests/test_analysis.cc checks that
# each file produces exactly its annotated set.
        .text
main:
        tid r1
        beq r1, r0, skip
        addi r4, r0, 7
skip:
        add r5, r4, r0          #! expect D001
        halt
