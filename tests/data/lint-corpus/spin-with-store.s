# Clean negative for S001: the same flag spin as spin-no-store.s,
# but slot 0 reaches a store to the polled word, so the wait is
# satisfiable and no diagnostic may fire.
#! clean
        .text
main:
        fastfork
        tid r10
        beq r10, r0, producer
        lui r8, 16
spin:
        lw r9, 0(r8)
        beq r9, r0, spin
        halt
producer:
        lui r8, 16
        addi r9, r0, 1
        sw r9, 0(r8)
        halt
        .data
flag:
        .word 0
