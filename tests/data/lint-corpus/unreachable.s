# C001: the two instructions after the unconditional jump have no
# path from the entry point -- dead code the assembler accepts but
# nothing can ever execute.
        .text
main:
        addi r1, r0, 1
        j done
        addi r2, r0, 2          #! expect C001
        addi r3, r0, 3
done:
        halt
