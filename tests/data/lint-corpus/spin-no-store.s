# S001: slots 1..3 spin on a flag word in .data that no reachable
# store in any slot ever writes; the flag's initial value keeps the
# branch taken, so the spin never exits.
        .text
main:
        fastfork
        tid r10
        beq r10, r0, done
        lui r8, 16
spin:
        lw r9, 0(r8)            #! expect S001
        beq r9, r0, spin
done:
        halt
        .data
flag:
        .word 0
