# Q010: only slot 0 pushes; every slot pops. The links out of
# slots 1..3 are never fed, so slot 0's own pop (fed by slot 3)
# blocks forever. The shared halt keeps the interval-based Q001
# silent: on the push path the net count at the halt is zero.
        .text
main:
        qen r20, r21
        fastfork
        tid r10
        bne r10, r0, recv
        addi r21, r0, 5
recv:
        add r3, r20, r0         #! expect Q010
        halt
