# Demo program used by the command-line tool smoke tests: each
# thread squares its logical-processor id into a private slot of
# the output array.
        .text
main:   fastfork
        tid  r1
        nslot r2
        la   r3, out
        sll  r4, r1, 2
        add  r3, r3, r4
        mul  r5, r1, r1
        sw   r5, 0(r3)
        halt
        .data
out:    .word 0, 0, 0, 0, 0, 0, 0, 0
