/**
 * @file
 * Regression guards for the paper's headline results. Each test
 * pins the *shape* of one claim from the evaluation section with a
 * generous band, so a future change that silently breaks the
 * reproduction fails loudly here. Exact measured values are
 * recorded in EXPERIMENTS.md; the full sweeps live in bench/.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "sched/list_scheduler.hh"

using namespace smtsim;

namespace
{

Workload
smallRayTrace()
{
    RayTraceParams p;
    p.width = 12;
    p.height = 12;
    p.num_spheres = 4;
    return makeRayTrace(p);
}

} // namespace

TEST(PaperShapes, TwoThreadsRoughlyDoubleThroughput)
{
    // Table 2: 1.79-2.02x with two thread slots.
    const Workload ray = smallRayTrace();
    const Outcome base = runBaseline(ray);
    ASSERT_TRUE(base.ok);
    CoreConfig cfg;
    cfg.num_slots = 2;
    cfg.fus.load_store = 2;
    const Outcome core = runCore(ray, cfg);
    ASSERT_TRUE(core.ok);
    const double s = speedup(base.stats, core.stats);
    EXPECT_GT(s, 1.6);
    EXPECT_LT(s, 2.3);
}

TEST(PaperShapes, SingleSlotCoreLosesToBaseRisc)
{
    // Section 2.1.2: the deeper pipeline damages single-thread
    // performance.
    const Workload ray = smallRayTrace();
    const Outcome base = runBaseline(ray);
    CoreConfig cfg;
    cfg.num_slots = 1;
    const Outcome core = runCore(ray, cfg);
    ASSERT_TRUE(base.ok && core.ok);
    EXPECT_LT(speedup(base.stats, core.stats), 1.0);
}

TEST(PaperShapes, OneLoadStoreUnitSaturates)
{
    // Section 3.2: with one LS unit and eight slots the unit's
    // utilization approaches 100% (paper: 99%) and adding the
    // second unit buys real speed-up (paper: +10.4%..79.8%).
    const Workload ray = smallRayTrace();
    CoreConfig one;
    one.num_slots = 8;
    const Outcome o1 = runCore(ray, one);
    ASSERT_TRUE(o1.ok);
    EXPECT_GT(o1.stats.unitUtilization(FuClass::LoadStore, 0),
              85.0);

    CoreConfig two = one;
    two.fus.load_store = 2;
    const Outcome o2 = runCore(ray, two);
    ASSERT_TRUE(o2.ok);
    const double relief =
        static_cast<double>(o1.stats.cycles) /
        static_cast<double>(o2.stats.cycles);
    EXPECT_GT(relief, 1.10);
}

TEST(PaperShapes, ThreadSlotsBeatIssueWidth)
{
    // Table 3's conclusion: (1,4) outruns (4,1) for the same issue
    // bandwidth and hardware budget.
    const Workload ray = smallRayTrace();
    const Outcome base = runBaseline(ray);
    ASSERT_TRUE(base.ok);

    CoreConfig smt;
    smt.num_slots = 4;
    smt.fus.load_store = 2;
    const Outcome s_smt = runCore(ray, smt);

    BaselineConfig wide;
    wide.width = 4;
    wide.fus.load_store = 2;
    const Outcome s_wide = runBaseline(ray, wide);

    ASSERT_TRUE(s_smt.ok && s_wide.ok);
    EXPECT_GT(speedup(base.stats, s_smt.stats),
              1.5 * speedup(base.stats, s_wide.stats));
}

TEST(PaperShapes, Lk1SaturatesAtMemoryFloor)
{
    // Table 4: cycles/iteration never drop below 8 (4 memory ops x
    // issue latency 2) and reach the floor region by 8 slots.
    Lk1Params p;
    p.n = 96;
    p.parallel = true;
    const Workload w = makeLivermore1(p);
    CoreConfig cfg;
    cfg.num_slots = 8;
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome o = runCore(w, cfg);
    ASSERT_TRUE(o.ok);
    const double per_iter =
        static_cast<double>(o.stats.cycles) / p.n;
    EXPECT_GE(per_iter, 8.0);
    EXPECT_LT(per_iter, 11.0);
}

TEST(PaperShapes, StrategyANeverSlowerThanSourceOrder)
{
    // Table 4: list scheduling (strategy A) improves or matches
    // the non-optimized code at every slot count.
    const ScheduleResult a = listSchedule(lk1LoopBody());
    Lk1Params p;
    p.n = 64;
    p.parallel = true;
    const Workload plain = makeLivermore1(p);
    const Workload sched = makeLivermore1(p, &a.order);
    for (int slots : {1, 2, 4}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.rotation_mode = RotationMode::Explicit;
        const Outcome po = runCore(plain, cfg);
        const Outcome so = runCore(sched, cfg);
        ASSERT_TRUE(po.ok && so.ok);
        EXPECT_LE(so.stats.cycles, po.stats.cycles)
            << "slots " << slots;
    }
}

TEST(PaperShapes, EagerExecutionShape)
{
    // Table 5: roughly 56 -> 32.5 -> 21.7 -> 17 cycles/iteration,
    // i.e. speed-up ~1.7 / ~2.5 / ~3.3 at 2 / 3 / 4 slots, flat
    // afterwards.
    ListWalkParams p;
    p.num_nodes = 150;
    const Workload seq = makeListWalk(p);
    p.eager = true;
    const Workload eager = makeListWalk(p);
    const Outcome base = runBaseline(seq);
    ASSERT_TRUE(base.ok);

    auto eager_speedup = [&](int slots) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.rotation_mode = RotationMode::Explicit;
        const Outcome o = runCore(eager, cfg);
        EXPECT_TRUE(o.ok) << o.error;
        return speedup(base.stats, o.stats);
    };
    const double s2 = eager_speedup(2);
    const double s3 = eager_speedup(3);
    const double s4 = eager_speedup(4);
    const double s8 = eager_speedup(8);
    EXPECT_GT(s2, 1.4);
    EXPECT_GT(s3, s2);
    EXPECT_GT(s4, s3);
    // Saturation: 8 slots buy almost nothing over 4.
    EXPECT_LT(s8, s4 * 1.1);
}

TEST(PaperShapes, StandbyStationsAreSmallOnRayTracing)
{
    // Table 2: standby stations change ray-tracing results by at
    // most a few percent.
    const Workload ray = smallRayTrace();
    CoreConfig with;
    with.num_slots = 4;
    with.fus.load_store = 2;
    CoreConfig without = with;
    without.standby_enabled = false;
    const Outcome ow = runCore(ray, with);
    const Outcome on = runCore(ray, without);
    ASSERT_TRUE(ow.ok && on.ok);
    const double ratio = static_cast<double>(on.stats.cycles) /
                         static_cast<double>(ow.stats.cycles);
    EXPECT_GT(ratio, 0.97);
    EXPECT_LT(ratio, 1.06);
}

TEST(PaperShapes, QueueRegistersBeatMemoryMailboxes)
{
    // Section 2.3.1's design rationale, quantified in
    // bench_doacross.
    RecurrenceParams p;
    p.n = 120;
    p.variant = RecurrenceVariant::DoacrossQueue;
    const Workload q = makeRecurrence(p);
    p.variant = RecurrenceVariant::DoacrossMemory;
    const Workload m = makeRecurrence(p);

    CoreConfig qc;
    qc.num_slots = 4;
    qc.rotation_mode = RotationMode::Explicit;
    CoreConfig mc;
    mc.num_slots = 4;
    const Outcome qo = runCore(q, qc);
    const Outcome mo = runCore(m, mc);
    ASSERT_TRUE(qo.ok && mo.ok);
    EXPECT_GT(static_cast<double>(mo.stats.cycles),
              1.3 * static_cast<double>(qo.stats.cycles));
}
