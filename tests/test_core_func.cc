#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "test_common.hh"
#include "trace/synth.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

/**
 * Run a synthetic kernel on the interpreter and the core with a
 * given config and require identical final memory contents over the
 * scratch area.
 */
void
expectCoreMatchesInterp(const SynthParams &params,
                        const CoreConfig &cfg)
{
    const Program prog = makeSyntheticKernel(params);
    const Addr scratch = prog.symbol("scratch");
    const Addr bytes = 8 * 64 * 9;

    MainMemory im;
    prog.loadInto(im);
    InterpConfig icfg;
    icfg.num_threads = cfg.num_slots;
    Interpreter interp(prog, im, icfg);
    ASSERT_TRUE(interp.run().completed);

    MainMemory cm;
    prog.loadInto(cm);
    MultithreadedProcessor cpu(prog, cm, cfg);
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);

    for (Addr a = scratch; a < scratch + bytes; a += 4) {
        ASSERT_EQ(cm.read32(a), im.read32(a))
            << "mismatch at offset " << (a - scratch);
    }
}

struct CfgParam
{
    int slots;
    int lsu;
    bool standby;
    int width;
    bool private_icache;
};

class CoreFuncEquivalence
    : public ::testing::TestWithParam<CfgParam>
{
};

} // namespace

TEST_P(CoreFuncEquivalence, SyntheticKernelMatchesInterpreter)
{
    const CfgParam p = GetParam();
    SynthParams sp;
    sp.seed = 17;
    sp.iterations = 24;
    sp.parallel = p.slots > 1;

    CoreConfig cfg;
    cfg.num_slots = p.slots;
    cfg.fus.load_store = p.lsu;
    cfg.standby_enabled = p.standby;
    cfg.width = p.width;
    cfg.private_icache = p.private_icache;
    expectCoreMatchesInterp(sp, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, CoreFuncEquivalence,
    ::testing::Values(CfgParam{1, 1, true, 1, false},
                      CfgParam{2, 1, true, 1, false},
                      CfgParam{4, 1, true, 1, false},
                      CfgParam{8, 1, true, 1, false},
                      CfgParam{4, 2, true, 1, false},
                      CfgParam{4, 1, false, 1, false},
                      CfgParam{8, 2, false, 1, false},
                      CfgParam{2, 1, true, 2, false},
                      CfgParam{2, 2, true, 4, false},
                      CfgParam{4, 1, true, 2, true},
                      CfgParam{8, 2, true, 1, true}),
    [](const ::testing::TestParamInfo<CfgParam> &info) {
        const CfgParam &p = info.param;
        return "s" + std::to_string(p.slots) + "_l" +
               std::to_string(p.lsu) +
               (p.standby ? "_sb" : "_nosb") + "_w" +
               std::to_string(p.width) +
               (p.private_icache ? "_priv" : "_shared");
    });

TEST(CoreFunc, SeedSweepMatchesInterpreter)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
        SynthParams sp;
        sp.seed = seed;
        sp.iterations = 16;
        sp.parallel = true;
        CoreConfig cfg;
        cfg.num_slots = 4;
        expectCoreMatchesInterp(sp, cfg);
    }
}

TEST(CoreFunc, DependenceLocalityExtremes)
{
    for (double locality : {0.0, 1.0}) {
        SynthParams sp;
        sp.seed = 5;
        sp.dependence_locality = locality;
        sp.iterations = 16;
        sp.parallel = true;
        CoreConfig cfg;
        cfg.num_slots = 4;
        expectCoreMatchesInterp(sp, cfg);
    }
}

TEST(CoreFunc, BaselineMatchesInterpreterOnSyntheticKernel)
{
    SynthParams sp;
    sp.seed = 23;
    sp.iterations = 24;
    sp.parallel = false;
    const Program prog = makeSyntheticKernel(sp);
    const Addr scratch = prog.symbol("scratch");

    MainMemory im;
    prog.loadInto(im);
    Interpreter interp(prog, im);
    ASSERT_TRUE(interp.run().completed);

    MainMemory bm;
    prog.loadInto(bm);
    BaselineProcessor cpu(prog, bm);
    ASSERT_TRUE(cpu.run().finished);

    for (Addr a = scratch; a < scratch + 8 * 64; a += 4)
        ASSERT_EQ(bm.read32(a), im.read32(a));
}

TEST(CoreFunc, InstructionCountsMatchInterpreter)
{
    SynthParams sp;
    sp.seed = 31;
    sp.iterations = 10;
    sp.parallel = true;
    const Program prog = makeSyntheticKernel(sp);

    MainMemory im;
    prog.loadInto(im);
    InterpConfig icfg;
    icfg.num_threads = 4;
    Interpreter interp(prog, im, icfg);
    const InterpResult ir = interp.run();

    MainMemory cm;
    prog.loadInto(cm);
    CoreConfig cfg;
    cfg.num_slots = 4;
    MultithreadedProcessor cpu(prog, cm, cfg);
    const RunStats cs = cpu.run();
    EXPECT_EQ(cs.instructions, ir.steps);
}

TEST(CoreFunc, DeterministicAcrossRuns)
{
    SynthParams sp;
    sp.seed = 77;
    sp.parallel = true;
    const Program prog = makeSyntheticKernel(sp);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.fus.load_store = 2;

    Cycle first = 0;
    for (int run = 0; run < 3; ++run) {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        const RunStats s = cpu.run();
        ASSERT_TRUE(s.finished);
        if (run == 0)
            first = s.cycles;
        else
            EXPECT_EQ(s.cycles, first);
    }
}

TEST(CoreFunc, R0StaysZeroOnCore)
{
    MainMemory mem;
    runCoreAsm(R"(
main:   addi r0, r0, 99
        la   r1, out
        sw   r0, 0(r1)
        halt
        .data
out:    .word 1
)",
               {}, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 0u);
}

TEST(CoreFunc, ContextFramesDefaultToSlotCount)
{
    CoreConfig cfg;
    cfg.num_slots = 3;
    EXPECT_EQ(cfg.frames(), 3);
    cfg.num_frames = 6;
    EXPECT_EQ(cfg.frames(), 6);
}
