#include <gtest/gtest.h>

#include "mem/memory.hh"

using namespace smtsim;

TEST(Memory, UntouchedReadsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read8(0x1234), 0u);
    EXPECT_EQ(mem.read32(0xdead0000), 0u);
    EXPECT_EQ(mem.read64(0x80000000), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    MainMemory mem;
    mem.write8(7, 0xab);
    EXPECT_EQ(mem.read8(7), 0xabu);
    EXPECT_EQ(mem.read8(6), 0u);
    EXPECT_EQ(mem.read8(8), 0u);
}

TEST(Memory, Word32LittleEndian)
{
    MainMemory mem;
    mem.write32(0x100, 0xdeadbeefu);
    EXPECT_EQ(mem.read8(0x100), 0xefu);
    EXPECT_EQ(mem.read8(0x101), 0xbeu);
    EXPECT_EQ(mem.read8(0x102), 0xadu);
    EXPECT_EQ(mem.read8(0x103), 0xdeu);
    EXPECT_EQ(mem.read32(0x100), 0xdeadbeefu);
}

TEST(Memory, Word64RoundTrip)
{
    MainMemory mem;
    mem.write64(0x200, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read64(0x200), 0x0123456789abcdefull);
    EXPECT_EQ(mem.read32(0x200), 0x89abcdefu);
    EXPECT_EQ(mem.read32(0x204), 0x01234567u);
}

TEST(Memory, DoubleRoundTrip)
{
    MainMemory mem;
    mem.writeDouble(0x300, -3.25);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x300), -3.25);
    mem.writeDouble(0x308, 1e300);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x308), 1e300);
}

TEST(Memory, CrossPageAccess)
{
    MainMemory mem;
    const Addr boundary = MainMemory::kPageBytes;
    mem.write32(boundary - 2, 0x11223344u);
    EXPECT_EQ(mem.read32(boundary - 2), 0x11223344u);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(Memory, LoadBytesAndWords)
{
    MainMemory mem;
    mem.loadBytes(0x10, {1, 2, 3});
    EXPECT_EQ(mem.read8(0x10), 1u);
    EXPECT_EQ(mem.read8(0x12), 3u);
    mem.loadWords(0x20, {0xaabbccddu, 0x11223344u});
    EXPECT_EQ(mem.read32(0x20), 0xaabbccddu);
    EXPECT_EQ(mem.read32(0x24), 0x11223344u);
}

TEST(Memory, OverwriteKeepsLatest)
{
    MainMemory mem;
    mem.write32(0x40, 1);
    mem.write32(0x40, 2);
    EXPECT_EQ(mem.read32(0x40), 2u);
}

TEST(RemoteRegionTest, Contains)
{
    RemoteRegion r;
    EXPECT_FALSE(r.contains(0));    // size 0: nothing is remote

    r.base = 0x1000;
    r.size = 0x100;
    r.latency = 50;
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x10ff));
    EXPECT_FALSE(r.contains(0x1100));
    EXPECT_FALSE(r.contains(0xfff));
}
