/**
 * @file
 * base/json.hh: writer/parser round trips, escaping, strict
 * integer preservation, and malformed-input diagnostics.
 */

#include <gtest/gtest.h>

#include "base/json.hh"

using namespace smtsim;

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, LargeIntegersStayExact)
{
    const std::uint64_t big = 2'000'000'000ull * 3;   // > 2^32
    const Json j = Json::parse(Json(big).dump());
    EXPECT_EQ(j.asU64(), big);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", Json(1));
    obj.set("alpha", Json(2));
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
    obj.set("zebra", Json(3));   // overwrite keeps position
    EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, NestedRoundTrip)
{
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    Json inner = Json::object();
    inner.set("pi", Json(3.25));
    arr.push(std::move(inner));
    Json doc = Json::object();
    doc.set("items", std::move(arr));
    doc.set("ok", Json(true));

    const Json back = Json::parse(doc.dump(2));
    EXPECT_EQ(back.at("items").size(), 3u);
    EXPECT_EQ(back.at("items").at(0).asInt(), 1);
    EXPECT_EQ(back.at("items").at(1).asString(), "two");
    EXPECT_DOUBLE_EQ(back.at("items").at(2).at("pi").asDouble(),
                     3.25);
    EXPECT_TRUE(back.at("ok").asBool());
    // Pretty and compact dumps parse identically.
    EXPECT_EQ(Json::parse(doc.dump()).dump(), back.dump());
}

TEST(Json, StringEscaping)
{
    const std::string nasty = "a\"b\\c\nd\te\x01f";
    const Json back = Json::parse(Json(nasty).dump());
    EXPECT_EQ(back.asString(), nasty);
}

TEST(Json, UnicodeEscapeParsing)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(Json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), JsonParseError);
    EXPECT_THROW(Json::parse("{"), JsonParseError);
    EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonParseError);
    EXPECT_THROW(Json::parse("tru"), JsonParseError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(Json::parse("1 2"), JsonParseError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonParseError);
}

TEST(Json, AccessorTypeChecks)
{
    const Json j = Json::parse("{\"n\":1}");
    EXPECT_THROW(j.at("missing"), JsonParseError);
    EXPECT_THROW(j.at("n").asString(), JsonParseError);
    EXPECT_THROW(j.at("n").asBool(), JsonParseError);
    EXPECT_EQ(j.at("n").asInt(), 1);
}

TEST(Json, WhitespaceTolerance)
{
    const Json j =
        Json::parse("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ");
    EXPECT_EQ(j.at("a").size(), 2u);
    EXPECT_TRUE(j.at("b").isNull());
}

// ----------------------------------------------------------------
// Hardened error paths: every rejection carries a byte offset and
// nothing — truncation, mutation, random bytes, absurd nesting —
// may crash the parser.
// ----------------------------------------------------------------

#include <string>

#include "base/random.hh"

namespace
{

/**
 * parse() must either return a value or throw JsonParseError whose
 * offset lies inside [0, size] and whose what() names it.
 */
void
expectParseIsTotal(const std::string &text)
{
    try {
        (void)Json::parse(text);
    } catch (const JsonParseError &e) {
        EXPECT_NE(e.offset(), JsonParseError::npos) << e.what();
        EXPECT_LE(e.offset(), text.size()) << e.what();
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

} // namespace

TEST(JsonHardening, ParseErrorsCarryByteOffsets)
{
    try {
        Json::parse("{\"a\": tru}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.offset(), 6u);
    }
    try {
        Json::parse("[1, 2");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.offset(), 5u);   // end of truncated input
    }
    // Accessor misuse is distinguishable from parse failures.
    try {
        Json(1).asString();
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.offset(), JsonParseError::npos);
    }
}

TEST(JsonHardening, DeepNestingIsRejectedNotFatal)
{
    const std::string deep(100000, '[');
    try {
        Json::parse(deep);
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_LE(e.offset(),
                  static_cast<std::size_t>(Json::kMaxParseDepth));
        EXPECT_NE(std::string(e.what()).find("nesting"),
                  std::string::npos);
    }
    // Matched-but-deep documents fail the same way.
    std::string balanced(300, '[');
    balanced += std::string(300, ']');
    EXPECT_THROW(Json::parse(balanced), JsonParseError);
    // Depth at the limit still parses.
    std::string ok(Json::kMaxParseDepth, '[');
    ok += std::string(Json::kMaxParseDepth, ']');
    EXPECT_NO_THROW(Json::parse(ok));
}

TEST(JsonHardening, TruncationFuzz)
{
    // Every prefix of a representative document must be handled.
    const std::string doc =
        "{\"schema\":1,\"key\":\"ab\\u0041c\",\"vals\":[1,-2.5,"
        "1e3,true,false,null],\"nest\":{\"s\":\"\\n\\t\\\\\"}}";
    ASSERT_NO_THROW(Json::parse(doc));
    for (std::size_t n = 0; n < doc.size(); ++n)
        expectParseIsTotal(doc.substr(0, n));
}

TEST(JsonHardening, MutationAndGarbageFuzz)
{
    const std::string doc =
        "{\"a\":[{\"b\":-12.75e2},\"x\",null,true],"
        "\"c\":\"q\\\"uo\\u00e9te\"}";
    Rng rng(0xfadedcafeull);
    // Single- and multi-byte mutations of a valid document.
    for (int iter = 0; iter < 4000; ++iter) {
        std::string mutated = doc;
        const int flips = 1 + static_cast<int>(rng.nextBelow(3));
        for (int f = 0; f < flips; ++f) {
            const std::size_t at = rng.nextBelow(mutated.size());
            mutated[at] = static_cast<char>(rng.nextBelow(256));
        }
        expectParseIsTotal(mutated);
    }
    // Pure random byte strings.
    for (int iter = 0; iter < 2000; ++iter) {
        std::string garbage(rng.nextBelow(64), '\0');
        for (char &c : garbage)
            c = static_cast<char>(rng.nextBelow(256));
        expectParseIsTotal(garbage);
    }
}
