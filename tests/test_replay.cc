/**
 * @file
 * Trace-driven replay on the detailed core: a run timed from a
 * recorded execution trace must produce bit-identical statistics to
 * the same run in execute mode, and workloads whose timing feeds
 * back into execution (KILLT races) must fall back cleanly.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "fastpath/engine.hh"
#include "harness/runner.hh"
#include "lab/executor.hh"
#include "lab/spec.hh"
#include "lab/spec_json.hh"
#include "mem/memory.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

/** Field-by-field RunStats equality with a readable diagnosis. */
void
expectStatsEqual(const RunStats &a, const RunStats &b,
                 const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.finished, b.finished) << label;
    EXPECT_EQ(a.fu_grants, b.fu_grants) << label;
    EXPECT_EQ(a.fu_busy, b.fu_busy) << label;
    EXPECT_EQ(a.unit_busy, b.unit_busy) << label;
    EXPECT_EQ(a.branches, b.branches) << label;
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.standby_stalls, b.standby_stalls) << label;
    EXPECT_EQ(a.context_switches, b.context_switches) << label;
    EXPECT_EQ(a.writeback_conflicts, b.writeback_conflicts)
        << label;
    EXPECT_EQ(a.dcache_hits, b.dcache_hits) << label;
    EXPECT_EQ(a.dcache_misses, b.dcache_misses) << label;
    EXPECT_EQ(a.icache_hits, b.icache_hits) << label;
    EXPECT_EQ(a.icache_misses, b.icache_misses) << label;
}

void
expectReplayMatchesExecute(const Workload &w, const CoreConfig &cfg)
{
    const Outcome exec = runCore(w, cfg);
    ASSERT_TRUE(exec.ok) << w.name << ": " << exec.error;
    bool replayed = false;
    const Outcome rep = runCoreReplay(w, cfg, &replayed);
    ASSERT_TRUE(rep.ok) << w.name << ": " << rep.error;
    EXPECT_TRUE(replayed) << w.name;
    expectStatsEqual(rep.stats, exec.stats, w.name);
}

} // namespace

TEST(Replay, SingleSlotMatchesExecute)
{
    MatmulParams mp;
    mp.n = 4;
    CoreConfig cfg;
    cfg.num_slots = 1;
    expectReplayMatchesExecute(makeMatmul(mp), cfg);
}

TEST(Replay, MultiSlotWorkloadsMatchExecute)
{
    MatmulParams mp;
    mp.n = 5;
    BsearchParams bp;
    bp.table_size = 32;
    bp.queries_per_thread = 8;
    StencilParams sp;
    sp.width = 8;
    sp.height = 6;
    sp.sweeps = 2;
    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    rp.num_spheres = 3;
    for (const Workload &w : {makeMatmul(mp), makeBsearch(bp),
                              makeStencil(sp), makeRayTrace(rp)}) {
        for (int slots : {2, 4}) {
            CoreConfig cfg;
            cfg.num_slots = slots;
            expectReplayMatchesExecute(w, cfg);
        }
    }
}

TEST(Replay, QueueRegisterWorkloadMatchesExecute)
{
    // Doacross over FP queue registers: replay must reproduce queue
    // occupancy (and hence blocking) without the recorded values
    // influencing timing.
    RecurrenceParams qp;
    qp.n = 24;
    qp.variant = RecurrenceVariant::DoacrossQueue;
    CoreConfig cfg;
    cfg.num_slots = 4;
    expectReplayMatchesExecute(makeRecurrence(qp), cfg);
}

TEST(Replay, MemorySpinWaitFallsBackToExecute)
{
    // The doacross-memory variant spins on a flag word, so its
    // per-thread instruction streams depend on the interleaving:
    // the spin count recorded by the functional engine differs from
    // the core's. Verified replay must catch the first divergent
    // spin branch and fall back; either way the stats match execute
    // mode exactly.
    RecurrenceParams mp;
    mp.n = 24;
    mp.variant = RecurrenceVariant::DoacrossMemory;
    const Workload w = makeRecurrence(mp);
    CoreConfig cfg;
    cfg.num_slots = 4;
    const Outcome exec = runCore(w, cfg);
    ASSERT_TRUE(exec.ok) << exec.error;
    bool replayed = true;
    const Outcome rep = runCoreReplay(w, cfg, &replayed);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_FALSE(replayed);
    expectStatsEqual(rep.stats, exec.stats, w.name);
}

TEST(Replay, NonDefaultGeometryMatchesExecute)
{
    // Timing-config changes (width, rotation, caches) must not
    // disturb replay: the trace pins values, not schedules.
    MatmulParams mp;
    mp.n = 5;
    const Workload w = makeMatmul(mp);

    CoreConfig wide;
    wide.num_slots = 2;
    wide.width = 2;
    expectReplayMatchesExecute(w, wide);

    CoreConfig rot;
    rot.num_slots = 4;
    rot.rotation_mode = RotationMode::Explicit;
    expectReplayMatchesExecute(w, rot);
}

TEST(Replay, EagerListWalkFallsBackToExecute)
{
    // KILLT's kill point depends on timing, so the eager list walk
    // is declared non-replayable; runCoreReplay must detect the
    // divergence and transparently re-run in execute mode.
    ListWalkParams wp;
    wp.num_nodes = 12;
    wp.break_at = 7;
    wp.eager = true;
    const Workload w = makeListWalk(wp);
    CoreConfig cfg;
    cfg.num_slots = 4;

    const Outcome exec = runCore(w, cfg);
    ASSERT_TRUE(exec.ok) << exec.error;
    bool replayed = true;
    const Outcome rep = runCoreReplay(w, cfg, &replayed);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_FALSE(replayed);
    expectStatsEqual(rep.stats, exec.stats, w.name);
}

TEST(Replay, SweepExecutesOnceTimesSixteenBitIdentical)
{
    // The tentpole sweep property: a 16-cell grid over one
    // workload runs the functional engine exactly once, times all
    // 16 cells from that trace, and every cell's statistics are
    // bit-identical to an execute-mode sweep of the same spec.
    lab::ExperimentSpec spec;
    spec.name = "replay-16";
    spec.workloads = {lab::WorkloadSpec::matmul(5)};
    spec.slots = {4};
    spec.lsu = {1, 2};
    spec.widths = {1, 2};
    spec.standby = {true, false};
    spec.rotation_intervals = {4, 8};

    lab::LabOptions opts;
    opts.num_threads = 2;

    const lab::ResultSet exec = lab::runSweep(spec, opts);
    ASSERT_EQ(exec.results.size(), 16u);
    EXPECT_EQ(exec.functional_executions, 0u);
    EXPECT_EQ(exec.replays, 0u);

    spec.replay = true;
    const lab::ResultSet rep = lab::runSweep(spec, opts);
    ASSERT_EQ(rep.results.size(), 16u);
    EXPECT_EQ(rep.functional_executions, 1u);
    EXPECT_EQ(rep.replays, 16u);
    EXPECT_EQ(rep.replay_fallbacks, 0u);

    for (std::size_t i = 0; i < rep.results.size(); ++i) {
        const lab::JobResult &a = rep.results[i];
        const lab::JobResult &b = exec.results[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_TRUE(a.ok) << a.id << ": " << a.error;
        EXPECT_TRUE(b.ok) << b.id << ": " << b.error;
        expectStatsEqual(a.stats, b.stats, a.id);
    }
}

TEST(Replay, SweepGroupsByWorkloadAndSlotCount)
{
    // Two slot counts need two traces (the recording engine's
    // thread count is the slot count); everything else shares.
    lab::ExperimentSpec spec;
    spec.workloads = {lab::WorkloadSpec::matmul(4)};
    spec.slots = {2, 4};
    spec.standby = {true, false};
    spec.replay = true;

    const lab::ResultSet rs = lab::runSweep(spec, {});
    ASSERT_EQ(rs.results.size(), 4u);
    EXPECT_EQ(rs.functional_executions, 2u);
    EXPECT_EQ(rs.replays, 4u);
    for (const lab::JobResult &r : rs.results)
        EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
}

TEST(Replay, SpecJsonRoundTripsReplayFlag)
{
    lab::ExperimentSpec spec;
    spec.workloads = {lab::WorkloadSpec::matmul(4)};
    spec.replay = true;
    const lab::ExperimentSpec back = lab::experimentSpecFromJson(
        lab::experimentSpecToJson(spec));
    EXPECT_TRUE(back.replay);
    // Absent flag defaults to execute mode (older spec files).
    const Json old = Json::parse(
        R"({"workloads": [{"kind": "matmul", "params": {"n": 4}}],)"
        R"( "name": "old"})");
    EXPECT_FALSE(lab::experimentSpecFromJson(old).replay);
}

TEST(Replay, DivergentTraceIsRejected)
{
    // Hand the core a trace recorded from a different program: the
    // pc mismatch must surface as ReplayDivergence, not as silently
    // wrong timing.
    MatmulParams mp;
    mp.n = 4;
    const Workload recorded_w = makeMatmul(mp);
    BsearchParams bp;
    bp.table_size = 32;
    bp.queries_per_thread = 8;
    const Workload timed_w = makeBsearch(bp);

    InterpConfig icfg;
    icfg.num_threads = 2;
    MainMemory fmem;
    recorded_w.program.loadInto(fmem);
    if (recorded_w.init)
        recorded_w.init(fmem);
    const fastpath::TracedRun traced =
        fastpath::recordTrace(recorded_w.program, fmem, icfg);

    CoreConfig cfg;
    cfg.num_slots = 2;
    MainMemory tmem;
    MultithreadedProcessor cpu(timed_w.program, tmem, cfg);
    cpu.setReplayTrace(&traced.trace);
    EXPECT_THROW(cpu.run(), ReplayDivergence);
}
