#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "asmr/assembler.hh"
#include "interp/interpreter.hh"
#include "lab/lab.hh"
#include "trace/synth.hh"
#include "core/processor.hh"
#include "mem/memory.hh"

using namespace smtsim;

namespace
{

constexpr Addr kRemoteBase = 0x00400000;

/**
 * Parameterized worker: sums r2 words starting at r1, stores the
 * sum to 0(r6). The entry context (no parameters) falls through
 * immediately; real work arrives via spawnContext with seeded
 * registers.
 */
const char *kWorker = R"(
main:   blez r2, done
loop:   lw   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 4
        addi r2, r2, -1
        bgtz r2, loop
        sw   r4, 0(r6)
done:   halt
        .data
outs:   .word 0, 0, 0, 0, 0, 0, 0, 0
)";

struct RemoteSetup
{
    Program prog;
    MainMemory mem;
    Addr outs;

    explicit RemoteSetup(int words_per_ctx, int num_ctxs)
        : prog(assemble(kWorker))
    {
        prog.loadInto(mem);
        outs = prog.symbol("outs");
        for (int i = 0; i < words_per_ctx * num_ctxs; ++i) {
            mem.write32(kRemoteBase + static_cast<Addr>(4 * i),
                        static_cast<std::uint32_t>(i + 1));
        }
    }

    /** Expected sum for context @p c of @p n words. */
    std::uint32_t
    expected(int c, int n) const
    {
        std::uint32_t sum = 0;
        for (int i = 0; i < n; ++i)
            sum += static_cast<std::uint32_t>(c * n + i + 1);
        return sum;
    }
};

std::array<std::uint32_t, kNumRegs>
workerRegs(const RemoteSetup &s, int ctx, int words)
{
    std::array<std::uint32_t, kNumRegs> regs{};
    regs[1] = kRemoteBase + static_cast<Addr>(4 * ctx * words);
    regs[2] = static_cast<std::uint32_t>(words);
    regs[6] = s.outs + static_cast<Addr>(4 * ctx);
    return regs;
}

CoreConfig
remoteConfig(int slots, int frames, Cycle latency)
{
    CoreConfig cfg;
    cfg.num_slots = slots;
    cfg.num_frames = frames;
    cfg.remote.base = kRemoteBase;
    cfg.remote.size = 0x10000;
    cfg.remote.latency = latency;
    return cfg;
}

} // namespace

TEST(Concurrent, RemoteAccessesTrapAndStillComputeCorrectly)
{
    const int words = 8;
    RemoteSetup s(words, 1);
    CoreConfig cfg = remoteConfig(1, 2, 100);
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry, workerRegs(s, 0, words));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_EQ(s.mem.read32(s.outs), s.expected(0, words));
    // Every remote word misses once.
    EXPECT_EQ(stats.context_switches,
              static_cast<std::uint64_t>(words));
}

TEST(Concurrent, SatisfiedLineDoesNotTrapTwice)
{
    // Two loads of the same word: the second hits the satisfied
    // line only if re-executed immediately; here distinct words
    // each trap exactly once, so switches == distinct words.
    const int words = 4;
    RemoteSetup s(words, 1);
    CoreConfig cfg = remoteConfig(1, 2, 50);
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry, workerRegs(s, 0, words));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_EQ(stats.context_switches, 4u);
}

TEST(Concurrent, ExtraContextFramesHideRemoteLatency)
{
    // One thread slot, four context frames: while one context waits
    // on remote memory the slot runs another, so four contexts cost
    // far less than four times one context (section 2.1.3's goal).
    const int words = 6;
    const Cycle latency = 300;

    RemoteSetup s1(words, 1);
    CoreConfig c1 = remoteConfig(1, 2, latency);
    MultithreadedProcessor cpu1(s1.prog, s1.mem, c1);
    cpu1.spawnContext(s1.prog.entry, workerRegs(s1, 0, words));
    const RunStats r1 = cpu1.run();
    ASSERT_TRUE(r1.finished);

    RemoteSetup s4(words, 4);
    CoreConfig c4 = remoteConfig(1, 5, latency);
    MultithreadedProcessor cpu4(s4.prog, s4.mem, c4);
    for (int c = 0; c < 4; ++c)
        cpu4.spawnContext(s4.prog.entry, workerRegs(s4, c, words));
    const RunStats r4 = cpu4.run();
    ASSERT_TRUE(r4.finished);
    for (int c = 0; c < 4; ++c) {
        EXPECT_EQ(s4.mem.read32(s4.outs + static_cast<Addr>(4 * c)),
                  s4.expected(c, words));
    }

    EXPECT_LT(static_cast<double>(r4.cycles),
              2.0 * static_cast<double>(r1.cycles));
}

TEST(Concurrent, MoreSlotsAndFramesScaleTogether)
{
    const int words = 6;
    RemoteSetup s(words, 8);
    CoreConfig cfg = remoteConfig(2, 9, 200);
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    for (int c = 0; c < 8; ++c)
        cpu.spawnContext(s.prog.entry, workerRegs(s, c, words));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    for (int c = 0; c < 8; ++c) {
        EXPECT_EQ(s.mem.read32(s.outs + static_cast<Addr>(4 * c)),
                  s.expected(c, words));
    }
    EXPECT_GT(stats.context_switches, 0u);
}

TEST(Concurrent, ExplicitRotationSuppressesSwitches)
{
    // Section 2.3.1: in explicit-rotation mode a data absence does
    // not switch contexts; the thread waits out the latency.
    const int words = 4;
    RemoteSetup s(words, 1);
    CoreConfig cfg = remoteConfig(1, 2, 80);
    cfg.rotation_mode = RotationMode::Explicit;
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry, workerRegs(s, 0, words));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_EQ(stats.context_switches, 0u);
    EXPECT_EQ(s.mem.read32(s.outs), s.expected(0, words));
}

TEST(Concurrent, RemoteStoresTrapToo)
{
    RemoteSetup s(1, 1);
    // Store directly into the remote region.
    const Program prog = assemble(R"(
main:   li   r1, 42
        li   r2, 0x00400100
        sw   r1, 0(r2)
        lw   r3, 0(r2)
        li   r4, 0x00400f00
        sw   r3, 0(r4)
        halt
)");
    MainMemory mem;
    prog.loadInto(mem);
    CoreConfig cfg = remoteConfig(1, 2, 60);
    MultithreadedProcessor cpu(prog, mem, cfg);
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_GE(stats.context_switches, 2u);
    EXPECT_EQ(mem.read32(0x00400100), 42u);
    EXPECT_EQ(mem.read32(0x00400f00), 42u);
}

TEST(Concurrent, SpawnWithoutFreeFrameFails)
{
    RemoteSetup s(1, 1);
    CoreConfig cfg = remoteConfig(1, 2, 10);
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry);     // frame 1 (0 is the entry)
    EXPECT_THROW(cpu.spawnContext(s.prog.entry), FatalError);
}

TEST(Concurrent, NoRemoteRegionMeansNoSwitches)
{
    const int words = 8;
    RemoteSetup s(words, 1);
    CoreConfig cfg;
    cfg.num_slots = 1;
    cfg.num_frames = 2;     // entry context + one worker
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry, workerRegs(s, 0, words));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_EQ(stats.context_switches, 0u);
    EXPECT_EQ(s.mem.read32(s.outs), s.expected(0, words));
}

TEST(Concurrent, EquivalenceUnderTrapsOnSyntheticKernel)
{
    // Remote region overlaying part of the synthetic kernel's
    // scratch data: traps fire mid-computation, threads switch in
    // and out, and the final memory image must still match the
    // functional golden model exactly.
    SynthParams sp;
    sp.seed = 61;
    sp.iterations = 12;
    sp.parallel = true;
    const Program prog = makeSyntheticKernel(sp);
    const Addr scratch = prog.symbol("scratch");

    MainMemory im;
    prog.loadInto(im);
    InterpConfig icfg;
    icfg.num_threads = 2;
    Interpreter interp(prog, im, icfg);
    ASSERT_TRUE(interp.run().completed);

    MainMemory cm;
    prog.loadInto(cm);
    CoreConfig cfg;
    cfg.num_slots = 2;
    cfg.num_frames = 4;
    cfg.remote.base = scratch;
    cfg.remote.size = 512;      // first thread's slice is remote
    cfg.remote.latency = 40;
    MultithreadedProcessor cpu(prog, cm, cfg);
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_GT(stats.context_switches, 0u);

    for (Addr a = scratch; a < scratch + 8 * 64 * 9; a += 4)
        ASSERT_EQ(cm.read32(a), im.read32(a));
}

TEST(Concurrent, TrapsInterleaveWithNormalThreads)
{
    // One context touches remote data while another runs purely
    // local code; both finish and the local thread is barely
    // disturbed.
    RemoteSetup s(16, 1);
    CoreConfig cfg = remoteConfig(2, 3, 400);
    MultithreadedProcessor cpu(s.prog, s.mem, cfg);
    cpu.spawnContext(s.prog.entry, workerRegs(s, 0, 16));
    const RunStats stats = cpu.run();
    ASSERT_TRUE(stats.finished);
    EXPECT_EQ(s.mem.read32(s.outs), s.expected(0, 16));
    EXPECT_EQ(stats.context_switches, 16u);
}

// -- shared result cache ------------------------------------------
//
// The on-disk cache is shared state between executors: multiple
// sweeps (threads here; smtsim-serve dispatchers and plain
// smtsim-sweep processes in production) read, write and evict one
// directory concurrently. These run under TSan in CI.

namespace
{

struct CacheDir
{
    std::filesystem::path path;

    explicit CacheDir(const char *tag)
        : path(std::filesystem::temp_directory_path() /
               (std::string("smtsim-conc-") + tag))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~CacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

std::vector<lab::Job>
sharedJobs()
{
    lab::ExperimentSpec spec;
    spec.name = "conc";
    spec.workloads = {lab::WorkloadSpec::matmul(6)};
    spec.slots = {1, 2};
    spec.standby = {false, true};
    return spec.expand();
}

} // namespace

TEST(Concurrent, SweepsSharingOneCacheDirAgree)
{
    const CacheDir dir("sweeps");
    const std::vector<lab::Job> jobs = sharedJobs();

    lab::LabOptions opts;
    opts.num_threads = 2;
    opts.cache_dir = dir.path.string();

    // Two executors race over the same jobs and the same cache
    // directory: whoever loses a store race must still read back a
    // whole record (atomic rename) or an ordinary miss, never a
    // torn one.
    lab::ResultSet a, b;
    std::thread ta([&] { a = lab::runJobs(jobs, opts); });
    std::thread tb([&] { b = lab::runJobs(jobs, opts); });
    ta.join();
    tb.join();

    ASSERT_EQ(a.results.size(), jobs.size());
    ASSERT_EQ(b.results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a.results[i].ok) << a.results[i].error;
        ASSERT_TRUE(b.results[i].ok) << b.results[i].error;
        // Simulation is deterministic, so sim and cached results
        // are indistinguishable apart from the from_cache flag.
        EXPECT_EQ(a.results[i].stats.cycles,
                  b.results[i].stats.cycles);
        EXPECT_EQ(a.results[i].key, b.results[i].key);
    }

    // Everything is cached now: a third sweep simulates nothing.
    const lab::ResultSet c = lab::runJobs(jobs, opts);
    EXPECT_EQ(c.cacheHits(), jobs.size());
}

TEST(Concurrent, CacheLoadStoreEvictRacesStayWhole)
{
    const CacheDir dir("hammer");
    const std::vector<lab::Job> jobs = sharedJobs();

    // Golden records, simulated once up front.
    std::vector<lab::JobResult> golden;
    for (const lab::Job &job : jobs)
        golden.push_back(lab::simulateJob(job));

    // A deliberately tiny budget so enforceLimit() actually evicts
    // while other threads are mid-load on the same records.
    const lab::ResultCache cache(dir.path.string(), 4096);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 25; ++round) {
                const std::size_t i =
                    static_cast<std::size_t>(t + round) %
                    jobs.size();
                cache.store(jobs[i], golden[i]);
                lab::JobResult out;
                if (cache.load(jobs[i], &out)) {
                    // A hit is the full record or nothing.
                    EXPECT_EQ(out.key, golden[i].key);
                    EXPECT_EQ(out.stats.cycles,
                              golden[i].stats.cycles);
                    EXPECT_TRUE(out.from_cache);
                }
                if (round % 8 == 0)
                    cache.enforceLimit();
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    // The budget held (allow one record of slack for a store that
    // raced the final eviction pass).
    cache.enforceLimit();
    EXPECT_LE(cache.diskBytes(), 4096u + 2048u);
}
