/**
 * @file
 * Tests for src/analysis: CFG construction, the init dataflow, the
 * queue-protocol checker and the lint driver — plus the contract
 * that every first-party program (workloads, demo, fuzz corpus and
 * freshly generated fuzz programs) is lint-clean.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "asmr/disasm.hh"
#include "fuzz/generate.hh"
#include "workloads/workloads.hh"

using namespace smtsim;
using namespace smtsim::analysis;

namespace
{

Program
prog(const std::string &src)
{
    return assemble(src);
}

std::vector<std::string>
diagIds(const LintReport &report)
{
    std::vector<std::string> ids;
    for (const Diagnostic &d : report.diags)
        ids.push_back(d.id);
    return ids;
}

/** Expect exactly the given IDs (order-insensitive). */
void
expectIds(const LintReport &report,
          std::vector<std::string> expected, const char *what)
{
    std::vector<std::string> actual = diagIds(report);
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected)
        << what << ":\n"
        << formatText(report, "<test>");
}

} // namespace

// ===================================================================
// CFG construction
// ===================================================================

TEST(Cfg, DiamondShape)
{
    const Program p = prog(R"(
main:
        addi r1, r0, 1
        beq r1, r0, skip
        addi r2, r0, 2
skip:
        halt
)");
    const Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    ASSERT_EQ(cfg.insns.size(), 4u);

    const BasicBlock &b0 = cfg.blocks[0];
    EXPECT_EQ(b0.first, 0u);
    EXPECT_EQ(b0.count, 2u);    // addi + beq
    ASSERT_EQ(b0.succs.size(), 2u);
    // Taken edge to the halt block, fall edge to the middle block.
    bool has_taken = false, has_fall = false;
    for (const Edge &e : b0.succs) {
        if (e.kind == EdgeKind::Taken)
            has_taken = e.block == 2;
        if (e.kind == EdgeKind::Fall)
            has_fall = e.block == 1;
    }
    EXPECT_TRUE(has_taken);
    EXPECT_TRUE(has_fall);

    for (const BasicBlock &bb : cfg.blocks)
        EXPECT_TRUE(bb.reachable);
    EXPECT_TRUE(cfg.fall_off_insns.empty());
    EXPECT_TRUE(cfg.bad_target_insns.empty());
}

TEST(Cfg, ForkEdgeAndTargets)
{
    const Program p = prog(R"(
main:
        fastfork
        tid r1
        halt
)");
    const Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks.size(), 2u);
    const BasicBlock &b0 = cfg.blocks[0];
    bool fork = false, fall = false;
    for (const Edge &e : b0.succs) {
        fork = fork || (e.kind == EdgeKind::Fork && e.block == 1);
        fall = fall || (e.kind == EdgeKind::Fall && e.block == 1);
    }
    EXPECT_TRUE(fork) << "fastfork must emit a Fork edge";
    EXPECT_TRUE(fall) << "the parent continues at pc+4";
    EXPECT_EQ(cfg.forkTargets(), std::vector<std::uint32_t>{1u});
}

TEST(Cfg, UnreachableAfterJump)
{
    const Program p = prog(R"(
main:
        j done
        addi r1, r0, 1
done:
        halt
)");
    const Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_TRUE(cfg.blocks[0].reachable);
    EXPECT_FALSE(cfg.blocks[1].reachable);
    EXPECT_TRUE(cfg.blocks[2].reachable);
}

TEST(Cfg, LoopBackEdge)
{
    const Program p = prog(R"(
main:
        addi r1, r0, 4
loop:
        addi r1, r1, -1
        bgtz r1, loop
        halt
)");
    const Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    const BasicBlock &loop = cfg.blocks[1];
    bool back = false;
    for (const Edge &e : loop.succs)
        back = back || (e.kind == EdgeKind::Taken && e.block == 1);
    EXPECT_TRUE(back);
}

TEST(Cfg, CallHasReturnFallEdge)
{
    const Program p = prog(R"(
main:
        jal helper
        halt
helper:
        jr r31
)");
    const Cfg cfg = buildCfg(p);
    const BasicBlock &b0 = cfg.blocks[0];
    bool call = false, fall = false;
    for (const Edge &e : b0.succs) {
        call = call || e.kind == EdgeKind::Call;
        fall = fall || e.kind == EdgeKind::Fall;
    }
    EXPECT_TRUE(call);
    EXPECT_TRUE(fall) << "jal models the post-return continuation";
    // jr ends its block with no successors but is recorded.
    EXPECT_EQ(cfg.indirect_insns.size(), 1u);
    for (const BasicBlock &bb : cfg.blocks)
        EXPECT_TRUE(bb.reachable);
}

// ===================================================================
// Init dataflow
// ===================================================================

TEST(Dataflow, InconsistentInitIsFlagged)
{
    const Program p = prog(R"(
main:
        tid r1
        beq r1, r0, skip
        addi r4, r0, 7
skip:
        add r5, r4, r0
        halt
)");
    const Cfg cfg = buildCfg(p);
    const InitDataflow df = runInitDataflow(cfg, {});
    ASSERT_EQ(df.maybe_uninit.size(), 1u);
    EXPECT_EQ(df.maybe_uninit[0].reg.file, RF::Int);
    EXPECT_EQ(df.maybe_uninit[0].reg.idx, 4);
}

TEST(Dataflow, NeverWrittenReadIsSilent)
{
    // Registers are architecturally zero: reading a register no
    // path ever writes is the documented "known zero" idiom.
    const Program p = prog(R"(
main:
        add r5, r4, r0
        fadd f2, f0, f1
        halt
)");
    const Cfg cfg = buildCfg(p);
    const InitDataflow df = runInitDataflow(cfg, {});
    EXPECT_TRUE(df.maybe_uninit.empty());
}

TEST(Dataflow, BothPathsWritingIsClean)
{
    const Program p = prog(R"(
main:
        tid r1
        beq r1, r0, other
        addi r4, r0, 7
        j join
other:
        addi r4, r0, 9
join:
        add r5, r4, r0
        halt
)");
    const Cfg cfg = buildCfg(p);
    const InitDataflow df = runInitDataflow(cfg, {});
    EXPECT_TRUE(df.maybe_uninit.empty());
}

TEST(Dataflow, ForkPropagatesParentState)
{
    // fastfork copies the parent's registers into every sibling
    // slot, so a pre-fork write is fully initialized afterwards.
    const Program p = prog(R"(
main:
        addi r8, r0, 3
        fastfork
        add r9, r8, r8
        halt
)");
    const Cfg cfg = buildCfg(p);
    const InitDataflow df = runInitDataflow(cfg, {});
    EXPECT_TRUE(df.maybe_uninit.empty());
}

TEST(Dataflow, ExcludedRegistersDoNotParticipate)
{
    // With r4 excluded (as a queue-mapped name would be), its
    // conditional write and later read are invisible.
    const Program p = prog(R"(
main:
        tid r1
        beq r1, r0, skip
        addi r4, r0, 7
skip:
        add r5, r4, r0
        halt
)");
    const Cfg cfg = buildCfg(p);
    RegSet exclude;
    exclude.add({RF::Int, 4});
    const InitDataflow df = runInitDataflow(cfg, exclude);
    EXPECT_TRUE(df.maybe_uninit.empty());
}

// ===================================================================
// Lint rules, positive and negative
// ===================================================================

TEST(Lint, CleanProgramIsClean)
{
    const LintReport r = lint(prog(R"(
main:
        addi r1, r0, 5
loop:
        addi r1, r1, -1
        bgtz r1, loop
        halt
)"));
    expectIds(r, {}, "straight-line loop program");
}

TEST(Lint, QueueSelfLink)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r20
        halt
)"));
    expectIds(r, {"Q003"}, "self-link");
}

TEST(Lint, QueueR0Mapping)
{
    const LintReport r = lint(prog(R"(
main:
        qen r0, r21
        halt
)"));
    expectIds(r, {"Q003"}, "r0 mapping");
}

TEST(Lint, BalancedExchangeLoopIsClean)
{
    // The recurrence shape: one seed push, then a loop that pops
    // and pushes exactly once per iteration, with a leftover value
    // at halt. None of that may alarm.
    const LintReport r = lint(prog(R"(
main:
        qenf f20, f21
        fastfork
        tid r1
        bne r1, r0, recv
        itof f1, r0
        fmov f21, f1
recv:
        addi r2, r0, 8
loop:
        fmov f1, f20
        fadd f1, f1, f1
        fmov f21, f1
        addi r2, r2, -1
        bgtz r2, loop
        halt
)"));
    expectIds(r, {}, "balanced doacross exchange");
}

TEST(Lint, NetNegativeLoop)
{
    const LintReport r = lint(prog(R"(
main:
        qenf f20, f21
        itof f1, r0
        fmov f21, f1
        fastfork
loop:
        fmov f2, f20
        fmov f3, f20
        fmov f21, f2
        j loop
)"));
    expectIds(r, {"Q001"}, "two pops one push per iteration");
}

TEST(Lint, PopNeverFed)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        add r3, r20, r0
        halt
)"));
    expectIds(r, {"Q002"}, "pop with no pushes anywhere");
}

TEST(Lint, PushNeverPopped)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        addi r21, r0, 1
        halt
)"));
    expectIds(r, {"Q006"}, "push with no pops anywhere");
}

TEST(Lint, OverPrimingBeyondDepth)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        addi r21, r0, 1
        addi r21, r0, 2
        addi r21, r0, 3
        addi r21, r0, 4
        addi r21, r0, 5
        add r3, r20, r0
        halt
)"));
    expectIds(r, {"Q004"}, "five pushes before the first pop");
}

TEST(Lint, DepthManyPrimingIsClean)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        addi r21, r0, 1
        addi r21, r0, 2
        addi r21, r0, 3
        addi r21, r0, 4
        add r3, r20, r0
        add r3, r20, r0
        add r3, r20, r0
        add r3, r20, r0
        halt
)"));
    expectIds(r, {}, "exactly queue-depth pushes then pops");
}

TEST(Lint, AllPathsPopFirst)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        fastfork
        add r3, r20, r0
        addi r21, r3, 1
        halt
)"));
    expectIds(r, {"Q007"}, "pop strictly precedes every push");
}

TEST(Lint, ShadowedArchAccess)
{
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        addi r21, r0, 1
        add r3, r21, r0
        add r3, r20, r0
        halt
)"));
    // Reading r21 (the write port) hits the shadowed register.
    expectIds(r, {"Q005"}, "architectural read of the write port");
}

TEST(Lint, InconsistentMappingWarns)
{
    const LintReport r = lint(prog(R"(
main:
        tid r1
        beq r1, r0, other
        qen r20, r21
        j go
other:
        qen r18, r19
go:
        addi r21, r0, 1
        addi r19, r0, 1
        add r3, r20, r0
        add r3, r18, r0
        halt
)"));
    const std::vector<std::string> ids = diagIds(r);
    EXPECT_TRUE(std::count(ids.begin(), ids.end(), "Q008"))
        << formatText(r, "<test>");
}

TEST(Lint, QdisDisablesFlowRules)
{
    // After qdis the registers are architectural again; the
    // flow-insensitive summary cannot track the transition, so
    // only mapping-legality rules run.
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        addi r21, r0, 1
        add r3, r20, r0
        qdis
        add r4, r20, r0
        addi r21, r4, 1
        halt
)"));
    expectIds(r, {}, "qdis program under flow rules");
}

TEST(Lint, WriteToR0Warns)
{
    const LintReport r = lint(prog(R"(
main:
        add r0, r1, r2
        halt
)"));
    expectIds(r, {"D002"}, "explicit write to r0");
}

TEST(Lint, SetrmodeAfterForkWarns)
{
    const LintReport r = lint(prog(R"(
main:
        fastfork
        setrmode explicit, 8
        halt
)"));
    expectIds(r, {"T001"}, "machine-global setrmode in all slots");
}

TEST(Lint, SetrmodeBeforeForkIsClean)
{
    const LintReport r = lint(prog(R"(
main:
        setrmode explicit, 8
        fastfork
        halt
)"));
    expectIds(r, {}, "setrmode before the fork");
}

TEST(Lint, ForkAfterForkWarns)
{
    const LintReport r = lint(prog(R"(
main:
        fastfork
        fastfork
        halt
)"));
    expectIds(r, {"T002"}, "second fork runs in forked code");
}

TEST(Lint, BranchOutsideTextIsError)
{
    const LintReport r = lint(prog(R"(
        .equ far, 0x4000
main:
        j far
)"));
    expectIds(r, {"C003"}, "jump outside the text segment");
}

TEST(Lint, JsonShapeAndCounts)
{
    const LintReport r = lint(prog(R"(
main:
        add r0, r1, r2
        add r5, r4, r0
        halt
)"));
    // One error (the r4 read never happens -- r4 is never written;
    // so actually only the D002 warning fires).
    const Json j = toJson(r);
    ASSERT_NE(j.find("diagnostics"), nullptr);
    EXPECT_EQ(j.at("diagnostics").size(), r.diags.size());
    EXPECT_EQ(j.at("errors").asInt(), r.errorCount());
    EXPECT_EQ(j.at("warnings").asInt(), r.warningCount());
}

// ===================================================================
// Source locations
// ===================================================================

TEST(SrcLoc, AssemblerRecordsLineAndColumn)
{
    const Program p = prog("        .text\n"
                           "main:   addi r1, r0, 1\n"
                           "        halt\n");
    ASSERT_EQ(p.text_locs.size(), 2u);
    EXPECT_EQ(p.locAt(p.text_base).line, 2u);
    EXPECT_EQ(p.locAt(p.text_base).col, 9u);
    EXPECT_EQ(p.locAt(p.text_base + 4).line, 3u);
    EXPECT_EQ(p.locAt(p.text_base + 4).col, 9u);
    // Out of range / unknown -> invalid loc.
    EXPECT_FALSE(p.locAt(p.text_base + 8).valid());
    EXPECT_FALSE(p.locAt(0).valid());
}

TEST(SrcLoc, TwoWordPseudoSharesTheLine)
{
    const Program p = prog("main:\n"
                           "        la r1, 0x123456\n"
                           "        halt\n");
    ASSERT_EQ(p.text_locs.size(), 3u);
    EXPECT_EQ(p.text_locs[0].line, 2u);
    EXPECT_EQ(p.text_locs[1].line, 2u);
    EXPECT_EQ(p.text_locs[2].line, 3u);
}

TEST(SrcLoc, RoundTripThroughProgramToAsm)
{
    const Program p = prog("main:\n"
                           "        addi r1, r0, 7\n"
                           "        halt\n");
    const std::string out = programToAsm(p);
    EXPECT_NE(out.find("# 2:9"), std::string::npos) << out;
    EXPECT_NE(out.find("# 3:9"), std::string::npos) << out;
    // The location comments must not break re-assembly.
    const Program again = assemble(out);
    EXPECT_EQ(again.text, p.text);
}

TEST(SrcLoc, DiagnosticsCarryLocations)
{
    const LintReport r = lint(prog("main:\n"
                                   "        qen r20, r20\n"
                                   "        halt\n"));
    ASSERT_EQ(r.diags.size(), 1u);
    EXPECT_EQ(r.diags[0].loc.line, 2u);
    EXPECT_EQ(r.diags[0].loc.col, 9u);
    const std::string text = formatText(r, "file.s");
    EXPECT_NE(text.find("file.s:2:9:"), std::string::npos) << text;
}

// ===================================================================
// Known-bad corpus: expected vs. actual diagnostics
// ===================================================================

namespace
{

/** (id, 1-based line) pairs, sorted. */
using Expectation = std::vector<std::pair<std::string, int>>;

Expectation
parseExpectations(const std::string &src)
{
    Expectation exp;
    std::istringstream is(src);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::size_t pos = line.find("#! expect ");
        if (pos == std::string::npos)
            continue;
        std::istringstream rest(line.substr(pos + 10));
        std::string id;
        rest >> id;
        exp.emplace_back(id, line_no);
    }
    std::sort(exp.begin(), exp.end());
    return exp;
}

} // namespace

TEST(LintCorpus, EveryFileFlagsExactlyItsAnnotations)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(LINT_CORPUS_DIR))
        if (entry.path().extension() == ".s")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 14u);

    for (const fs::path &file : files) {
        std::ifstream in(file);
        ASSERT_TRUE(in) << file;
        std::ostringstream oss;
        oss << in.rdbuf();
        const std::string src = oss.str();

        // A "#! clean" marker declares a must-stay-clean negative:
        // the program resembles a buggy shape but is correct, and
        // any diagnostic on it is a precision regression.
        const bool must_be_clean =
            src.find("#! clean") != std::string::npos;
        const Expectation expected = parseExpectations(src);
        if (must_be_clean) {
            ASSERT_TRUE(expected.empty())
                << file << " mixes #! clean with #! expect";
        } else {
            ASSERT_FALSE(expected.empty())
                << file << " has no #! expect annotations";
        }

        const LintReport r = lint(assemble(src));
        Expectation actual;
        for (const Diagnostic &d : r.diags) {
            actual.emplace_back(d.id,
                                static_cast<int>(d.loc.line));
        }
        std::sort(actual.begin(), actual.end());
        EXPECT_EQ(actual, expected)
            << file << ":\n"
            << formatText(r, file.string());
        EXPECT_EQ(r.hasErrors(), !must_be_clean) << file;
    }
}

// ===================================================================
// Every first-party program is lint-clean
// ===================================================================

namespace
{

void
expectClean(const Program &p, const std::string &what)
{
    const LintReport r = lint(p);
    EXPECT_TRUE(r.diags.empty())
        << what << " is not lint-clean:\n"
        << formatText(r, what);
}

} // namespace

TEST(LintClean, Workloads)
{
    expectClean(makeRayTrace({.width = 4, .height = 4}).program,
                "raytrace");
    expectClean(makeLivermore1({.n = 40, .parallel = false}).program,
                "livermore-seq");
    expectClean(makeLivermore1({.n = 40, .parallel = true}).program,
                "livermore-par");
    expectClean(makeMatmul({.n = 6}).program, "matmul");
    expectClean(makeBsearch({.table_size = 64}).program, "bsearch");
    expectClean(makeStencil({.width = 8, .height = 6}).program,
                "stencil");
    expectClean(makeRadiosity({.num_patches = 8}).program,
                "radiosity");
    for (const RecurrenceVariant v :
         {RecurrenceVariant::Sequential,
          RecurrenceVariant::DoacrossQueue,
          RecurrenceVariant::DoacrossMemory}) {
        expectClean(
            makeRecurrence({.n = 32, .variant = v}).program,
            "recurrence");
    }
    expectClean(makeListWalk({.num_nodes = 16, .eager = false})
                    .program,
                "listwalk");
    expectClean(makeListWalk({.num_nodes = 16, .eager = true})
                    .program,
                "listwalk-eager");
    expectClean(makeTokenRing({.rounds = 8, .bug = 0}).program,
                "tokenring");
}

// ===================================================================
// Cross-slot concurrency rules (Q009+, S001)
// ===================================================================

TEST(LintConcurrency, TokenRingWaitCycleVariantIsFlagged)
{
    const LintReport r =
        lint(makeTokenRing({.rounds = 8, .bug = 1}).program);
    expectIds(r, {"Q009"}, "injected wait-for cycle");
}

TEST(LintConcurrency, TokenRingRateSkewVariantIsFlagged)
{
    const LintReport r =
        lint(makeTokenRing({.rounds = 8, .bug = 2}).program);
    expectIds(r, {"Q011"}, "injected rate skew");
}

TEST(LintConcurrency, WaitCycleDetectedPastTidGuards)
{
    // tid == nslot is false in every slot, so the "seeder" path is
    // statically dead in the per-slot projection: every slot's
    // first queue action is a pop. The path-insensitive Q007 rule
    // cannot see this; Q009 must.
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        fastfork
        tid r10
        nslot r11
        beq r10, r11, seeder
loop:
        add r3, r20, r0
        addi r21, r3, 1
        j loop
seeder:
        addi r21, r0, 7
        j loop
)"));
    expectIds(r, {"Q009"}, "infeasible seeder guard");
}

TEST(LintConcurrency, RealSeederGuardStaysClean)
{
    // Same shape, but the guard is tid == 0: slot 0 really does
    // push first, so the ring is seeded and live.
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        fastfork
        tid r10
        beq r10, r0, seeder
loop:
        add r3, r20, r0
        addi r21, r3, 1
        j loop
seeder:
        addi r21, r0, 7
        j loop
)"));
    expectIds(r, {}, "slot 0 seeds the ring");
}

TEST(LintConcurrency, LinkNeverFedIsFlagged)
{
    // Only slot 0 pushes; every slot pops once. The links out of
    // slots 1..3 are never fed, so those pops block forever.
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        fastfork
        tid r10
        bne r10, r0, recv
        addi r21, r0, 5
recv:
        add r3, r20, r0
        halt
)"));
    expectIds(r, {"Q010"}, "leader-only pushes");
}

TEST(LintConcurrency, RateMismatchBothDirections)
{
    // Overrun mirror of the tokenring skew: followers push two per
    // iteration but their consumers pop only one.
    const LintReport r = lint(prog(R"(
main:
        qen r20, r21
        fastfork
        tid r10
        addi r21, r0, 1
        addi r16, r0, 8
loop:
        bne r10, r0, follow
        add r3, r20, r0
        add r4, r20, r0
        addi r21, r4, 1
        j latch
follow:
        add r3, r20, r0
        addi r21, r3, 1
        addi r21, r3, 2
latch:
        addi r16, r16, -1
        bne r16, r0, loop
        halt
)"));
    expectIds(r, {"Q012"}, "followers overfeed their links");
}

TEST(LintConcurrency, DeadSpinIsFlagged)
{
    // Spin on a data word nothing ever stores to.
    const LintReport r = lint(prog(R"(
main:
        fastfork
        lui r8, 16
spin:
        lw r9, 0(r8)
        beq r9, r0, spin
        halt
)"));
    expectIds(r, {"S001"}, "flag word never written");
}

TEST(LintConcurrency, SpinWithMatchingStoreStaysClean)
{
    // Same spin, but another slot's path stores the flag.
    const LintReport r = lint(prog(R"(
main:
        fastfork
        tid r10
        lui r8, 16
        bne r10, r0, waiter
        addi r9, r0, 1
        sw r9, 0(r8)
        halt
waiter:
        lw r9, 0(r8)
        beq r9, r0, waiter
        halt
)"));
    expectIds(r, {}, "a sibling slot satisfies the spin");
}

TEST(LintConcurrency, RecurrenceMemoryVariantStaysClean)
{
    // The flag addresses are loop-varying (strided): the spin rule
    // must not resolve them and must stay silent.
    const LintReport r = lint(
        makeRecurrence({.n = 16,
                        .variant = RecurrenceVariant::DoacrossMemory})
            .program);
    expectIds(r, {}, "strided flag spin");
}

TEST(LintConcurrency, SlotsOptionChangesProjection)
{
    // The seeder guard is tid == 2: feasible at 4 slots (slot 2
    // pushes first, one token keeps the whole ring live), dead at
    // 2 slots (every slot's first action is a pop).
    const std::string src = R"(
main:
        qen r20, r21
        fastfork
        tid r10
        addi r11, r0, 2
        bne r10, r11, loop
        addi r21, r0, 7
loop:
        add r3, r20, r0
        addi r21, r3, 1
        j loop
)";
    LintOptions four;
    four.slots = 4;
    expectIds(lint(prog(src), four), {},
              "4 slots: slot 2 seeds the ring");
    LintOptions two;
    two.slots = 2;
    expectIds(lint(prog(src), two), {"Q009"},
              "2 slots: the seeder slot does not exist");
}

TEST(LintClean, DemoProgram)
{
    const std::filesystem::path demo =
        std::filesystem::path(LINT_CORPUS_DIR).parent_path() /
        "demo.s";
    std::ifstream in(demo);
    ASSERT_TRUE(in) << demo;
    std::ostringstream oss;
    oss << in.rdbuf();
    expectClean(assemble(oss.str()), "demo.s");
}

TEST(LintClean, FiveHundredGeneratedPrograms)
{
    for (unsigned long long seed = 1; seed <= 500; ++seed) {
        fuzz::GenOptions opts;
        opts.seed = seed;
        const fuzz::GenProgram gp = fuzz::generate(opts);
        expectClean(assemble(gp.render()),
                    "generated seed " + std::to_string(seed));
    }
}
