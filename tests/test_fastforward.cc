/**
 * @file
 * Cycle-exactness of the idle-cycle fast-forward (docs/PERF.md):
 * for every workload and a spread of machine shapes, a run with
 * fast_forward enabled must be indistinguishable — RunStats, the
 * detailed stall counters, architectural registers, memory — from
 * the naive cycle-by-cycle loop it replaces.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "asmr/assembler.hh"
#include "core/processor.hh"
#include "harness/runner.hh"
#include "test_common.hh"
#include "trace/synth.hh"

using namespace smtsim;
using namespace smtsim::test;

namespace
{

void
expectSameStats(const RunStats &ff, const RunStats &naive,
                const std::string &what)
{
    EXPECT_EQ(ff.cycles, naive.cycles) << what;
    EXPECT_EQ(ff.instructions, naive.instructions) << what;
    EXPECT_EQ(ff.finished, naive.finished) << what;
    EXPECT_EQ(ff.fu_grants, naive.fu_grants) << what;
    EXPECT_EQ(ff.fu_busy, naive.fu_busy) << what;
    EXPECT_EQ(ff.unit_busy, naive.unit_busy) << what;
    EXPECT_EQ(ff.branches, naive.branches) << what;
    EXPECT_EQ(ff.loads, naive.loads) << what;
    EXPECT_EQ(ff.stores, naive.stores) << what;
    EXPECT_EQ(ff.standby_stalls, naive.standby_stalls) << what;
    EXPECT_EQ(ff.context_switches, naive.context_switches) << what;
    EXPECT_EQ(ff.writeback_conflicts, naive.writeback_conflicts)
        << what;
    EXPECT_EQ(ff.dcache_hits, naive.dcache_hits) << what;
    EXPECT_EQ(ff.dcache_misses, naive.dcache_misses) << what;
    EXPECT_EQ(ff.icache_hits, naive.icache_hits) << what;
    EXPECT_EQ(ff.icache_misses, naive.icache_misses) << what;
}

/** Run @p w on the core twice (fast-forward on/off) and compare
 *  everything observable. */
void
checkCoreExact(const Workload &w, CoreConfig cfg,
               const std::string &what)
{
    // Bound the naive pass: a misconfigured shape must exhaust a
    // small budget, not the 2e9-cycle default.
    cfg.max_cycles = 500'000;
    cfg.fast_forward = true;
    MainMemory mem_ff;
    w.program.loadInto(mem_ff);
    if (w.init)
        w.init(mem_ff);
    MultithreadedProcessor ff(w.program, mem_ff, cfg);
    const RunStats sf = ff.run();

    cfg.fast_forward = false;
    MainMemory mem_nv;
    w.program.loadInto(mem_nv);
    if (w.init)
        w.init(mem_nv);
    MultithreadedProcessor nv(w.program, mem_nv, cfg);
    const RunStats sn = nv.run();

    expectSameStats(sf, sn, what);
    EXPECT_EQ(ff.detail().all(), nv.detail().all()) << what;
    for (int f = 0; f < cfg.frames(); ++f) {
        for (RegIndex r = 0; r < kNumRegs; ++r) {
            EXPECT_EQ(ff.intReg(f, r), nv.intReg(f, r))
                << what << " frame " << f << " r" << int{r};
            EXPECT_EQ(ff.fpReg(f, r), nv.fpReg(f, r))
                << what << " frame " << f << " f" << int{r};
        }
    }
    const Addr base = w.program.data_base;
    const Addr end =
        base + static_cast<Addr>(w.program.data.size());
    for (Addr a = base; a < end; a += 4)
        ASSERT_EQ(mem_ff.read32(a), mem_nv.read32(a))
            << what << " data word @" << a;
    if (w.check) {
        std::string why;
        EXPECT_TRUE(w.check(mem_ff, &why)) << what << ": " << why;
    }
}

std::vector<Workload>
smallWorkloads()
{
    RayTraceParams rp;
    rp.width = 4;
    rp.height = 4;
    rp.num_spheres = 3;
    Lk1Params lp;
    lp.n = 16;
    Lk1Params lpp;
    lpp.n = 16;
    lpp.parallel = true;
    ListWalkParams wp;
    wp.num_nodes = 10;
    MatmulParams mp;
    mp.n = 4;
    BsearchParams bp;
    bp.table_size = 16;
    bp.queries_per_thread = 4;
    RadiosityParams dp;
    dp.num_patches = 5;
    RecurrenceParams cq;
    cq.n = 12;
    cq.variant = RecurrenceVariant::DoacrossQueue;
    RecurrenceParams cm;
    cm.n = 12;
    cm.variant = RecurrenceVariant::DoacrossMemory;

    std::vector<Workload> ws;
    ws.push_back(makeRayTrace(rp));
    ws.push_back(makeLivermore1(lp));
    ws.push_back(makeLivermore1(lpp));
    ws.push_back(makeListWalk(wp));
    ws.push_back(makeMatmul(mp));
    ws.push_back(makeBsearch(bp));
    ws.push_back(makeRadiosity(dp));
    ws.push_back(makeRecurrence(cq));
    ws.push_back(makeRecurrence(cm));
    return ws;
}

std::vector<std::pair<std::string, CoreConfig>>
coreShapes()
{
    std::vector<std::pair<std::string, CoreConfig>> shapes;

    CoreConfig lone;
    lone.num_slots = 1;
    shapes.emplace_back("slots=1", lone);

    shapes.emplace_back("default", CoreConfig{});

    CoreConfig wide;
    wide.num_slots = 8;
    wide.fus.int_alu = 2;
    wide.fus.load_store = 2;
    shapes.emplace_back("slots=8,lsu=2", wide);

    CoreConfig nostandby;
    nostandby.standby_enabled = false;
    shapes.emplace_back("no-standby", nostandby);

    CoreConfig fastrot;
    fastrot.rotation_interval = 1;
    shapes.emplace_back("rot=1", fastrot);

    CoreConfig expl;
    expl.rotation_mode = RotationMode::Explicit;
    shapes.emplace_back("explicit-rot", expl);

    CoreConfig priv;
    priv.private_icache = true;
    shapes.emplace_back("private-icache", priv);

    return shapes;
}

} // namespace

TEST(FastForward, CoreExactOnEveryWorkloadAndShape)
{
    for (const Workload &w : smallWorkloads()) {
        for (const auto &[tag, cfg] : coreShapes()) {
            checkCoreExact(w, cfg, w.name + " / " + tag);
            if (HasFatalFailure())
                return;
        }
    }
}

TEST(FastForward, CoreExactOnDenseSyntheticKernel)
{
    SynthParams sp;
    sp.seed = 101;
    sp.iterations = 48;
    const Program prog = makeSyntheticKernel(sp);

    Workload w;
    w.name = "synth";
    w.program = prog;

    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.width = 2;
    cfg.fus.int_alu = 2;
    cfg.fus.load_store = 2;
    checkCoreExact(w, cfg, "synth dense width=2");
}

TEST(FastForward, CoreExactUnderConcurrentMultithreading)
{
    // The configuration fast-forward pays off most: long remote
    // latencies with more contexts than slots, so the machine
    // spends most wall cycles waiting for remote lines.
    const char *src = R"(
main:   blez r2, done
loop:   lw   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 4
        addi r2, r2, -1
        bgtz r2, loop
        sw   r4, 0(r6)
done:   halt
        .data
outs:   .word 0, 0, 0, 0, 0, 0, 0, 0
)";
    constexpr Addr kRemoteBase = 0x00400000;
    const int words = 12;
    const int ctxs = 6;

    for (Cycle latency : {Cycle{50}, Cycle{200}, Cycle{800}}) {
        RunStats stats[2];
        std::uint32_t outs_val[2][8];
        for (int pass = 0; pass < 2; ++pass) {
            Machine m(src);
            const Addr outs = m.prog.symbol("outs");
            for (int i = 0; i < words * ctxs; ++i) {
                m.mem.write32(kRemoteBase +
                                  static_cast<Addr>(4 * i),
                              static_cast<std::uint32_t>(i + 1));
            }
            CoreConfig cfg;
            cfg.num_slots = 2;
            cfg.num_frames = ctxs + 2;
            cfg.remote.base = kRemoteBase;
            cfg.remote.size = 0x10000;
            cfg.remote.latency = latency;
            cfg.fast_forward = pass == 0;
            MultithreadedProcessor cpu(m.prog, m.mem, cfg);
            for (int c = 0; c < ctxs; ++c) {
                std::array<std::uint32_t, kNumRegs> regs{};
                regs[1] = kRemoteBase +
                          static_cast<Addr>(4 * c * words);
                regs[2] = static_cast<std::uint32_t>(words);
                regs[6] = outs + static_cast<Addr>(4 * c);
                cpu.spawnContext(m.prog.entry, regs);
            }
            stats[pass] = cpu.run();
            for (int c = 0; c < 8; ++c) {
                outs_val[pass][c] = m.mem.read32(
                    outs + static_cast<Addr>(4 * c));
            }
        }
        const std::string what =
            "remote latency " + std::to_string(latency);
        expectSameStats(stats[0], stats[1], what);
        EXPECT_GT(stats[0].context_switches, 0u) << what;
        for (int c = 0; c < 8; ++c)
            EXPECT_EQ(outs_val[0][c], outs_val[1][c]) << what;
    }
}

TEST(FastForward, CoreExactWhenBudgetExpires)
{
    // An infinite loop and a deadlocked doacross ring: the budget
    // path must report the same (cycles, finished) either way.
    for (const char *src :
         {"main: j main\n",
          "main: qen r20, r21\n      add r1, r20, r0\n"
          "      halt\n"}) {
        RunStats s[2];
        for (int pass = 0; pass < 2; ++pass) {
            CoreConfig cfg;
            cfg.num_slots = 2;
            cfg.max_cycles = 5000;
            cfg.fast_forward = pass == 0;
            s[pass] = runCoreAsm(src, cfg);
        }
        expectSameStats(s[0], s[1], src);
        EXPECT_FALSE(s[0].finished) << src;
        EXPECT_EQ(s[0].cycles, 5000u) << src;
    }
}

TEST(FastForward, BaselineExactOnEveryWorkload)
{
    for (const Workload &w : smallWorkloads()) {
        for (int width : {1, 2, 4}) {
            BaselineConfig cfg;
            cfg.width = width;
            if (width > 1) {
                cfg.fus.int_alu = 2;
                cfg.fus.load_store = 2;
            }
            cfg.fast_forward = true;
            const Outcome ff = runBaseline(w, cfg);
            cfg.fast_forward = false;
            const Outcome nv = runBaseline(w, cfg);
            const std::string what =
                w.name + " / baseline width=" +
                std::to_string(width);
            EXPECT_EQ(ff.ok, nv.ok) << what;
            expectSameStats(ff.stats, nv.stats, what);
        }
    }
}

TEST(FastForward, BaselineExactWhenBudgetExpires)
{
    RunStats s[2];
    for (int pass = 0; pass < 2; ++pass) {
        BaselineConfig cfg;
        cfg.max_cycles = 3000;
        cfg.fast_forward = pass == 0;
        // Runs off the end of text: the window drains and the
        // machine spins to the budget.
        s[pass] = runBaselineAsm("main: addi r1, r0, 1\n", cfg);
    }
    expectSameStats(s[0], s[1], "baseline off-text");
    EXPECT_FALSE(s[0].finished);
    EXPECT_EQ(s[0].cycles, 3000u);
}
