#include <gtest/gtest.h>

#include "harness/analytic.hh"
#include "harness/runner.hh"

using namespace smtsim;

TEST(Analytic, HandComputedBounds)
{
    RunStats ref;
    ref.cycles = 100;
    // Busiest: load/store at 30% of cycles; ALU at 10%.
    ref.fu_busy[static_cast<int>(FuClass::LoadStore)] = 30;
    ref.fu_busy[static_cast<int>(FuClass::IntAlu)] = 10;

    const AnalyticModel m = buildAnalyticModel(ref);
    FuPoolConfig pool;

    // The paper's example: ~30% busiest unit -> about 3 threads
    // fit (speed-up bound 1/0.3 = 3.33).
    EXPECT_NEAR(m.speedupBound(8, pool), 1.0 / 0.3, 1e-9);
    // Below saturation the thread count is the bound.
    EXPECT_DOUBLE_EQ(m.speedupBound(2, pool), 2.0);
    EXPECT_EQ(m.bottleneck(pool), FuClass::LoadStore);

    // A second load/store unit doubles that class's headroom.
    pool.load_store = 2;
    EXPECT_NEAR(m.speedupBound(8, pool), 2.0 / 0.3, 1e-9);
}

TEST(Analytic, EmptyStatsAreHarmless)
{
    RunStats ref;
    const AnalyticModel m = buildAnalyticModel(ref);
    FuPoolConfig pool;
    EXPECT_DOUBLE_EQ(m.speedupBound(4, pool), 4.0);
    EXPECT_EQ(m.bottleneck(pool), FuClass::None);
}

TEST(Analytic, SimulationNeverExceedsBound)
{
    // Property over several workloads: measured speed-up stays at
    // or below the capacity bound derived from the single-thread
    // run (small tolerance for cold-start effects).
    MatmulParams mp;
    mp.n = 10;
    BsearchParams bp;
    bp.table_size = 128;
    bp.queries_per_thread = 24;
    const Workload workloads[] = {makeMatmul(mp),
                                  makeBsearch(bp)};

    for (const Workload &w : workloads) {
        CoreConfig one;
        one.num_slots = 1;
        const Outcome ref = runCore(w, one);
        ASSERT_TRUE(ref.ok) << w.name << ": " << ref.error;
        const AnalyticModel m = buildAnalyticModel(ref.stats);

        for (int slots : {2, 4, 8}) {
            CoreConfig cfg;
            cfg.num_slots = slots;
            const Outcome o = runCore(w, cfg);
            ASSERT_TRUE(o.ok) << w.name;
            const double sim =
                static_cast<double>(ref.stats.cycles) /
                static_cast<double>(o.stats.cycles);
            EXPECT_LE(sim, m.speedupBound(slots, cfg.fus) * 1.02)
                << w.name << " slots " << slots;
        }
    }
}

TEST(Analytic, BoundTightensWithFewerUnits)
{
    RunStats ref;
    ref.cycles = 100;
    ref.fu_busy[static_cast<int>(FuClass::FpAdd)] = 50;
    const AnalyticModel m = buildAnalyticModel(ref);
    FuPoolConfig pool;
    EXPECT_DOUBLE_EQ(m.speedupBound(8, pool), 2.0);
    EXPECT_EQ(m.bottleneck(pool), FuClass::FpAdd);
}
