#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/queue_ring.hh"

using namespace smtsim;

TEST(QueueRing, RingTopology)
{
    QueueRing ring(3, 4);
    // Slot 0 writes; slot 1 (its successor) reads.
    ring.reserve(0);
    ring.push(0, 42);
    EXPECT_TRUE(ring.canPop(1, 1));
    EXPECT_FALSE(ring.canPop(2, 1));
    EXPECT_FALSE(ring.canPop(0, 1));
    EXPECT_EQ(ring.pop(1), 42u);
    EXPECT_FALSE(ring.canPop(1, 1));
}

TEST(QueueRing, WrapAround)
{
    QueueRing ring(3, 4);
    // The last slot feeds slot 0.
    ring.reserve(2);
    ring.push(2, 7);
    EXPECT_TRUE(ring.canPop(0, 1));
    EXPECT_EQ(ring.pop(0), 7u);
}

TEST(QueueRing, FifoOrder)
{
    QueueRing ring(2, 4);
    for (std::uint64_t v : {1, 2, 3}) {
        ring.reserve(0);
        ring.push(0, v);
    }
    EXPECT_TRUE(ring.canPop(1, 3));
    EXPECT_EQ(ring.pop(1), 1u);
    EXPECT_EQ(ring.pop(1), 2u);
    EXPECT_EQ(ring.pop(1), 3u);
}

TEST(QueueRing, DepthLimitsReservations)
{
    QueueRing ring(2, 2);
    EXPECT_TRUE(ring.canReserve(0));
    ring.reserve(0);
    EXPECT_TRUE(ring.canReserve(0));
    ring.reserve(0);
    EXPECT_FALSE(ring.canReserve(0));
    // Deposits do not change occupancy until popped.
    ring.push(0, 1);
    EXPECT_FALSE(ring.canReserve(0));
    ring.pop(1);
    EXPECT_TRUE(ring.canReserve(0));
}

TEST(QueueRing, UnreserveReleasesSpace)
{
    QueueRing ring(2, 1);
    ring.reserve(0);
    EXPECT_FALSE(ring.canReserve(0));
    ring.unreserve(0);
    EXPECT_TRUE(ring.canReserve(0));
}

TEST(QueueRing, ClearEmptiesEverything)
{
    QueueRing ring(2, 4);
    ring.reserve(0);
    ring.push(0, 5);
    ring.reserve(1);
    ring.clear();
    EXPECT_FALSE(ring.canPop(1, 1));
    EXPECT_TRUE(ring.canReserve(0));
    EXPECT_TRUE(ring.canReserve(1));
}

TEST(QueueRing, SingleSlotSelfLoop)
{
    // A one-slot ring feeds itself (used by the eager loop on a
    // single-slot machine).
    QueueRing ring(1, 2);
    ring.reserve(0);
    ring.push(0, 9);
    EXPECT_TRUE(ring.canPop(0, 1));
    EXPECT_EQ(ring.pop(0), 9u);
}

TEST(QueueRing, PopEmptyPanics)
{
    QueueRing ring(2, 2);
    EXPECT_THROW(ring.pop(0), PanicError);
}

TEST(QueueRing, PushWithoutReservationPanics)
{
    QueueRing ring(2, 2);
    EXPECT_THROW(ring.push(0, 1), PanicError);
}
