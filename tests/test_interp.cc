#include <gtest/gtest.h>

#include "base/logging.hh"
#include "test_common.hh"

using namespace smtsim;
using namespace smtsim::test;

TEST(Interp, ArithmeticAndMemory)
{
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   addi r1, r0, 21
        add  r2, r1, r1
        la   r3, out
        sw   r2, 0(r3)
        halt
        .data
out:    .word 0
)",
                                1, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.steps, 6u);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 42u);
}

TEST(Interp, LoopAndBranches)
{
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   li   r1, 10
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bgtz r1, loop
        la   r3, out
        sw   r2, 0(r3)
        halt
        .data
out:    .word 0
)",
                                1, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 55u);
}

TEST(Interp, JalAndJr)
{
    MainMemory mem;
    runInterpAsm(R"(
main:   jal  sub
        la   r3, out
        sw   r2, 0(r3)
        halt
sub:    addi r2, r0, 99
        jr   r31
        .data
out:    .word 0
)",
                 1, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 99u);
}

TEST(Interp, FpPipeline)
{
    MainMemory mem;
    runInterpAsm(R"(
main:   la   r1, in
        lf   f1, 0(r1)
        lf   f2, 8(r1)
        fmul f3, f1, f2
        fsqrt f4, f3
        fdiv f5, f4, f2
        sf   f5, 16(r1)
        halt
        .data
in:     .float 8.0, 2.0
out:    .float 0.0
)",
                 1, &mem);
    EXPECT_DOUBLE_EQ(mem.readDouble(kDefaultDataBase + 16), 2.0);
}

TEST(Interp, FastForkActivatesAllThreads)
{
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   la   r1, outs
        fastfork
        tid  r2
        sll  r3, r2, 2
        add  r3, r1, r3
        addi r4, r2, 100
        sw   r4, 0(r3)
        halt
        .data
outs:   .word 0, 0, 0, 0
)",
                                4, &mem);
    EXPECT_TRUE(r.completed);
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(mem.read32(kDefaultDataBase +
                             static_cast<Addr>(4 * t)),
                  100u + t);
    }
    // Forked threads start after the fork point: 4 thread bodies.
    EXPECT_EQ(r.per_thread_steps.size(), 4u);
    EXPECT_GT(r.per_thread_steps[1], 0u);
}

TEST(Interp, ForkCopiesParentRegisters)
{
    MainMemory mem;
    runInterpAsm(R"(
main:   li   r5, 77
        la   r1, outs
        fastfork
        tid  r2
        sll  r3, r2, 2
        add  r3, r1, r3
        sw   r5, 0(r3)
        halt
        .data
outs:   .word 0, 0
)",
                 2, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 77u);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 4), 77u);
}

TEST(Interp, QueueRegistersRelayValues)
{
    // Thread 0 sends 5 to thread 1; thread 1 doubles and stores.
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   qen  r20, r21
        fastfork
        tid  r2
        bne  r2, r0, recv
        addi r21, r0, 5     # enqueue 5 to successor
        halt
recv:   add  r3, r20, r0    # dequeue
        add  r3, r3, r3
        la   r4, out
        sw   r3, 0(r4)
        halt
        .data
out:    .word 0
)",
                                2, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 10u);
}

TEST(Interp, QueueBlockingIsNotDeadlockWhenProducerComes)
{
    // Consumer starts first but producer eventually pushes.
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   qen  r20, r21
        fastfork
        tid  r2
        beq  r2, r0, prod
        add  r3, r20, r0
        la   r4, out
        sw   r3, 0(r4)
        halt
prod:   nop
        nop
        nop
        addi r21, r0, 123
        halt
        .data
out:    .word 0
)",
                                2, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 123u);
}

TEST(Interp, DeadlockDetected)
{
    // Single thread popping an empty queue can never progress.
    EXPECT_THROW(runInterpAsm(R"(
main:   qen  r20, r21
        add  r1, r20, r0
        halt
)",
                              1),
                 FatalError);
}

TEST(Interp, ChgpriRotatesAndBlocksNonTop)
{
    // Threads store their tid in priority order: each thread waits
    // for the top priority before storing via pstw, then rotates.
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   la   r1, out
        fastfork
        tid  r2
        pstw r2, 0(r1)      # performed in priority (= tid) order
        chgpri
        halt
        .data
out:    .word 0
)",
                                4, &mem);
    EXPECT_TRUE(r.completed);
    // The last store wins: thread 3 stores last.
    EXPECT_EQ(mem.read32(kDefaultDataBase), 3u);
}

TEST(Interp, KilltStopsOtherThreads)
{
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   la   r1, out
        fastfork
        tid  r2
        bne  r2, r0, spin
        killt
        addi r3, r0, 7
        sw   r3, 0(r1)
        halt
spin:   j    spin           # would never halt without the kill
        .data
out:    .word 0
)",
                                4, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 7u);
}

TEST(Interp, HaltedThreadLeavesPriorityRing)
{
    // Thread 0 halts immediately; thread 1 must still get the top
    // priority for its pstw.
    MainMemory mem;
    const auto r = runInterpAsm(R"(
main:   la   r1, out
        fastfork
        tid  r2
        beq  r2, r0, quit
        pstw r2, 0(r1)
        halt
quit:   halt
        .data
out:    .word 0
)",
                                2, &mem);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 1u);
}

TEST(Interp, R0AlwaysZero)
{
    MainMemory mem;
    runInterpAsm(R"(
main:   addi r0, r0, 55
        la   r1, out
        sw   r0, 0(r1)
        halt
        .data
out:    .word 0xffffffff
)",
                 1, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 0u);
}

TEST(Interp, TidAndNslot)
{
    MainMemory mem;
    runInterpAsm(R"(
main:   nslot r1
        tid  r2
        la   r3, out
        sw   r1, 0(r3)
        sw   r2, 4(r3)
        halt
        .data
out:    .word 0, 9
)",
                 3, &mem);
    EXPECT_EQ(mem.read32(kDefaultDataBase), 3u);
    EXPECT_EQ(mem.read32(kDefaultDataBase + 4), 0u);
}

TEST(Interp, QenValidation)
{
    EXPECT_THROW(runInterpAsm("main: qen r0, r1\nhalt\n", 1),
                 FatalError);
    EXPECT_THROW(runInterpAsm("main: qen r5, r5\nhalt\n", 1),
                 FatalError);
}

TEST(Interp, TraceHookSeesEveryInstruction)
{
    Machine m(R"(
main:   addi r1, r0, 2
loop:   addi r1, r1, -1
        bgtz r1, loop
        halt
)");
    Interpreter interp(m.prog, m.mem);
    std::vector<Addr> pcs;
    interp.setTraceHook([&](int, Addr pc, const Insn &) {
        pcs.push_back(pc);
    });
    const auto r = interp.run();
    EXPECT_EQ(pcs.size(), r.steps);
    ASSERT_EQ(pcs.size(), 6u);
    EXPECT_EQ(pcs[0], m.prog.entry);
    EXPECT_EQ(pcs[1], m.prog.entry + 4);   // first loop iteration
    EXPECT_EQ(pcs[3], m.prog.entry + 4);   // second loop iteration
}
