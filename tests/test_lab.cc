/**
 * @file
 * smtsim::lab — the parallel experiment engine.
 *
 * The contracts under test:
 *  - simulations are deterministic: the same job yields bitwise-
 *    identical RunStats on every run, serial or parallel (this is
 *    what makes result caching sound at all);
 *  - the content-addressed cache: a warm rerun is 100% cache hits
 *    with identical stats, any config/workload change moves the
 *    key, corrupt records degrade to misses;
 *  - failure isolation: one failing point never fails the sweep,
 *    and failures are not cached.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "lab/lab.hh"
#include "machine/run_stats_json.hh"

using namespace smtsim;
using namespace smtsim::lab;
namespace fs = std::filesystem;

namespace
{

/** Small, fast grid used by most tests. */
std::vector<Job>
smallGrid()
{
    const WorkloadSpec wl = WorkloadSpec::matmul(6);
    std::vector<Job> jobs;
    jobs.push_back(baselineJob("mm/baseline", wl));
    for (int slots : {1, 2, 4}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        jobs.push_back(
            coreJob("mm/s" + std::to_string(slots), wl, cfg));
    }
    return jobs;
}

/** Fresh per-test cache directory under the build tree's tmp. */
class LabCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("smtsim-lab-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string cacheDir() const { return dir_.string(); }

  private:
    fs::path dir_;
};

} // namespace

// ----------------------------------------------------------------
// Determinism
// ----------------------------------------------------------------

TEST(LabDeterminism, RepeatedRunsAreBitwiseIdentical)
{
    const std::vector<Job> jobs = smallGrid();
    LabOptions opts;
    opts.num_threads = 2;
    const ResultSet a = runJobs(jobs, opts);
    const ResultSet b = runJobs(jobs, opts);
    ASSERT_EQ(a.results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].id);
        EXPECT_TRUE(a.results[i].ok) << a.results[i].error;
        EXPECT_TRUE(
            statsEqual(a.results[i].stats, b.results[i].stats));
    }
}

TEST(LabDeterminism, ParallelMatchesSerial)
{
    const std::vector<Job> jobs = smallGrid();
    LabOptions serial;
    serial.num_threads = 1;
    LabOptions parallel;
    parallel.num_threads = 4;
    const ResultSet a = runJobs(jobs, serial);
    const ResultSet b = runJobs(jobs, parallel);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].id);
        EXPECT_TRUE(
            statsEqual(a.results[i].stats, b.results[i].stats));
        EXPECT_EQ(a.results[i].id, b.results[i].id);
    }
}

// ----------------------------------------------------------------
// Cache keys
// ----------------------------------------------------------------

TEST(LabCacheKey, StableForIdenticalJobs)
{
    const std::vector<Job> a = smallGrid();
    const std::vector<Job> b = smallGrid();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].cacheKey(), b[i].cacheKey());
}

TEST(LabCacheKey, IdDoesNotAffectKey)
{
    Job a = coreJob("one", WorkloadSpec::matmul(6), CoreConfig{});
    Job b = coreJob("two", WorkloadSpec::matmul(6), CoreConfig{});
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
}

TEST(LabCacheKey, EveryConfigFieldMoves)
{
    const WorkloadSpec wl = WorkloadSpec::matmul(6);
    const Job base = coreJob("p", wl, CoreConfig{});
    const std::string k0 = base.cacheKey();

    auto variant = [&](auto mutate) {
        CoreConfig cfg;
        mutate(cfg);
        return coreJob("p", wl, cfg).cacheKey();
    };
    EXPECT_NE(k0, variant([](CoreConfig &c) { c.num_slots = 8; }));
    EXPECT_NE(k0, variant([](CoreConfig &c) { c.num_frames = 8; }));
    EXPECT_NE(k0, variant([](CoreConfig &c) { c.width = 2; }));
    EXPECT_NE(k0,
              variant([](CoreConfig &c) { c.fus.load_store = 2; }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.standby_enabled = false;
              }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.rotation_mode = RotationMode::Explicit;
              }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.rotation_interval = 16;
              }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.private_icache = true;
              }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.dcache.size_bytes = 4096;
              }));
    EXPECT_NE(k0, variant([](CoreConfig &c) {
                  c.max_cycles = 1000;
              }));

    // Workload identity and engine selection move the key too.
    EXPECT_NE(k0, coreJob("p", WorkloadSpec::matmul(7),
                          CoreConfig{})
                      .cacheKey());
    EXPECT_NE(k0, coreJob("p", WorkloadSpec::bsearch(),
                          CoreConfig{})
                      .cacheKey());
    EXPECT_NE(k0, baselineJob("p", wl).cacheKey());
    EXPECT_NE(k0, interpJob("p", wl).cacheKey());
}

// ----------------------------------------------------------------
// The on-disk cache
// ----------------------------------------------------------------

TEST_F(LabCacheTest, SecondSweepIsAllHits)
{
    const std::vector<Job> jobs = smallGrid();
    LabOptions opts;
    opts.num_threads = 2;
    opts.cache_dir = cacheDir();

    const ResultSet cold = runJobs(jobs, opts);
    EXPECT_EQ(cold.cacheHits(), 0u);
    EXPECT_EQ(cold.failures(), 0u);

    const ResultSet warm = runJobs(jobs, opts);
    EXPECT_EQ(warm.cacheHits(), jobs.size());   // 100% hits
    EXPECT_EQ(warm.failures(), 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].id);
        EXPECT_TRUE(warm.results[i].from_cache);
        EXPECT_TRUE(statsEqual(cold.results[i].stats,
                               warm.results[i].stats));
    }
}

TEST_F(LabCacheTest, ChangedConfigMissesWarmCache)
{
    const WorkloadSpec wl = WorkloadSpec::matmul(6);
    LabOptions opts;
    opts.cache_dir = cacheDir();

    CoreConfig cfg;
    runJobs({coreJob("p", wl, cfg)}, opts);

    cfg.standby_enabled = false;   // different point, same id
    const ResultSet rs = runJobs({coreJob("p", wl, cfg)}, opts);
    EXPECT_EQ(rs.cacheHits(), 0u);
    EXPECT_TRUE(rs.results[0].ok);
}

TEST_F(LabCacheTest, CorruptRecordDegradesToMiss)
{
    const std::vector<Job> jobs = {
        coreJob("p", WorkloadSpec::matmul(6), CoreConfig{})};
    LabOptions opts;
    opts.cache_dir = cacheDir();
    runJobs(jobs, opts);

    const ResultCache cache(cacheDir());
    const std::string path = cache.pathFor(jobs[0].cacheKey());
    ASSERT_TRUE(fs::exists(path));
    {
        std::ofstream trunc(path);
        trunc << "{\"schema\": 1, \"garb";
    }
    const ResultSet rs = runJobs(jobs, opts);
    EXPECT_EQ(rs.cacheHits(), 0u);   // resimulated
    EXPECT_TRUE(rs.results[0].ok);
}

TEST_F(LabCacheTest, FailuresAreNotCached)
{
    Job job = coreJob("tiny-budget", WorkloadSpec::matmul(6),
                      CoreConfig{});
    job.core.max_cycles = 10;   // guaranteed budget exhaustion
    LabOptions opts;
    opts.cache_dir = cacheDir();

    const ResultSet first = runJobs({job}, opts);
    EXPECT_EQ(first.failures(), 1u);
    EXPECT_FALSE(fs::exists(
        ResultCache(cacheDir()).pathFor(job.cacheKey())));

    const ResultSet again = runJobs({job}, opts);
    EXPECT_EQ(again.cacheHits(), 0u);
    EXPECT_EQ(again.failures(), 1u);
}

TEST_F(LabCacheTest, DisabledCacheWritesNothing)
{
    runJobs({coreJob("p", WorkloadSpec::matmul(6), CoreConfig{})},
            LabOptions{});
    EXPECT_FALSE(fs::exists(cacheDir()));
}

// ----------------------------------------------------------------
// Failure isolation + budgets
// ----------------------------------------------------------------

TEST(LabExecutor, OneBadPointDoesNotSinkTheSweep)
{
    std::vector<Job> jobs = smallGrid();
    Job bad = coreJob("bad", WorkloadSpec::matmul(6),
                      CoreConfig{});
    bad.core.max_cycles = 10;
    jobs.insert(jobs.begin() + 1, bad);

    LabOptions opts;
    opts.num_threads = 2;
    const ResultSet rs = runJobs(jobs, opts);
    EXPECT_EQ(rs.failures(), 1u);
    const JobResult *failed = rs.find("bad");
    ASSERT_NE(failed, nullptr);
    EXPECT_FALSE(failed->ok);
    EXPECT_NE(failed->error.find("budget"), std::string::npos);
    EXPECT_TRUE(rs.find("mm/baseline")->ok);
    EXPECT_TRUE(rs.find("mm/s4")->ok);
    EXPECT_THROW(rs.statsOf("bad"), std::runtime_error);
}

TEST(LabExecutor, MaxCyclesOverrideClampsAndRekeys)
{
    const Job job =
        coreJob("p", WorkloadSpec::matmul(6), CoreConfig{});
    LabOptions clamped;
    clamped.max_cycles = 10;
    const ResultSet rs = runJobs({job}, clamped);
    EXPECT_EQ(rs.failures(), 1u);   // clamp took effect
    // The clamped run is keyed under the clamped config.
    Job clamped_job = job;
    clamped_job.core.max_cycles = 10;
    EXPECT_EQ(rs.results[0].key, clamped_job.cacheKey());
    EXPECT_NE(rs.results[0].key, job.cacheKey());
}

TEST(LabExecutor, ProgressCallbackSeesEveryJob)
{
    const std::vector<Job> jobs = smallGrid();
    std::size_t calls = 0;
    std::size_t max_done = 0;
    LabOptions opts;
    opts.num_threads = 2;
    opts.progress = [&](const Progress &p) {
        ++calls;
        max_done = std::max(max_done, p.done);
        EXPECT_EQ(p.total, jobs.size());
        EXPECT_NE(p.last, nullptr);
    };
    runJobs(jobs, opts);
    EXPECT_EQ(calls, jobs.size());
    EXPECT_EQ(max_done, jobs.size());
}

// ----------------------------------------------------------------
// Specs, expansion, serialization
// ----------------------------------------------------------------

TEST(LabSpec, ExpandProducesTheFullGrid)
{
    ExperimentSpec spec;
    spec.workloads = {WorkloadSpec::matmul(6)};
    spec.slots = {1, 2, 4};
    spec.lsu = {1, 2};
    spec.standby = {false, true};
    spec.include_baseline = true;
    const std::vector<Job> jobs = spec.expand();
    EXPECT_EQ(jobs.size(), 1u + 3u * 2u * 2u);
    EXPECT_EQ(jobs[0].engine, EngineKind::Baseline);
    // Ids are unique.
    std::set<std::string> ids;
    for (const Job &j : jobs)
        ids.insert(j.id);
    EXPECT_EQ(ids.size(), jobs.size());
}

TEST(LabSpec, ExpandRejectsEmptyAxes)
{
    ExperimentSpec spec;
    spec.workloads = {WorkloadSpec::matmul(6)};
    spec.slots.clear();
    EXPECT_THROW(spec.expand(), std::invalid_argument);
    spec = ExperimentSpec{};
    EXPECT_THROW(spec.expand(), std::invalid_argument);   // no wl
}

TEST(LabSpec, WorkloadFromString)
{
    const WorkloadSpec wl = WorkloadSpec::fromString(
        "raytrace:width=24,height=24,seed=7");
    EXPECT_EQ(wl.kind, "raytrace");
    EXPECT_EQ(wl.params.at("width"), 24);
    EXPECT_EQ(wl.params.at("height"), 24);
    EXPECT_EQ(wl.params.at("seed"), 7);
    EXPECT_EQ(wl.params.at("spheres"), 5);   // default kept

    EXPECT_THROW(WorkloadSpec::fromString("nosuch"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::fromString("matmul:bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::fromString("matmul:n=banana"),
                 std::invalid_argument);
    EXPECT_THROW(WorkloadSpec::fromString("matmul:n"),
                 std::invalid_argument);
}

TEST(LabSpec, InstantiateRejectsUnknownParams)
{
    WorkloadSpec wl = WorkloadSpec::matmul(6);
    wl.params["typo"] = 1;
    EXPECT_THROW(instantiate(wl), std::invalid_argument);
}

TEST(LabResult, JsonRoundTrip)
{
    LabOptions opts;
    const ResultSet rs = runJobs(smallGrid(), opts);
    for (const JobResult &r : rs.results) {
        const JobResult back =
            resultFromJson(resultToJson(r));
        EXPECT_EQ(back.id, r.id);
        EXPECT_EQ(back.key, r.key);
        EXPECT_EQ(back.ok, r.ok);
        EXPECT_TRUE(statsEqual(back.stats, r.stats));
    }
    // CSV: header + one line per result.
    const std::string csv = rs.toCsv();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              rs.results.size() + 1);
    // Table renders without throwing and mentions every job.
    const std::string table = rs.toTable("t").str();
    for (const JobResult &r : rs.results)
        EXPECT_NE(table.find(r.id), std::string::npos);
}

// ----------------------------------------------------------------
// LRU size bounds (--cache-max-mb)
// ----------------------------------------------------------------

namespace
{

/** Distinct cheap jobs (num_slots moves the cache key). */
std::vector<Job>
distinctJobs(int n)
{
    std::vector<Job> jobs;
    for (int i = 0; i < n; ++i) {
        CoreConfig cfg;
        cfg.num_slots = i + 1;
        jobs.push_back(coreJob("j" + std::to_string(i),
                               WorkloadSpec::matmul(6), cfg));
    }
    return jobs;
}

/** mtime ticks can be coarse; space out LRU-ordering stores. */
void
lruTick()
{
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

} // namespace

TEST_F(LabCacheTest, BoundedCacheEvictsOldestFirst)
{
    const std::vector<Job> jobs = distinctJobs(6);
    std::vector<JobResult> golden;
    for (const Job &job : jobs)
        golden.push_back(simulateJob(job));

    // Size one record to express the budget in record counts.
    std::uint64_t per;
    {
        const ResultCache sizer(cacheDir());
        sizer.store(jobs[0], golden[0]);
        per = sizer.diskBytes();
        ASSERT_GT(per, 0u);
        fs::remove_all(cacheDir());
    }

    const ResultCache cache(cacheDir(), 3 * per + per / 2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        cache.store(jobs[i], golden[i]);
        lruTick();
    }
    cache.enforceLimit();

    EXPECT_LE(cache.diskBytes(), cache.maxBytes());
    // The newest records survived; the oldest are gone.
    EXPECT_TRUE(cache.contains(jobs[5]));
    EXPECT_TRUE(cache.contains(jobs[4]));
    EXPECT_FALSE(cache.contains(jobs[0]));
    EXPECT_FALSE(cache.contains(jobs[1]));

    // Evicted records are ordinary misses, not errors.
    JobResult out;
    EXPECT_FALSE(cache.load(jobs[0], &out));
    EXPECT_TRUE(cache.load(jobs[5], &out));
    EXPECT_TRUE(out.from_cache);
}

TEST_F(LabCacheTest, LoadRefreshesLruStampButContainsDoesNot)
{
    const Job job = distinctJobs(1)[0];
    const JobResult golden = simulateJob(job);
    // LRU stamping only happens on bounded caches; a budget far
    // above one record keeps this free of actual eviction.
    const ResultCache cache(cacheDir(), 64u << 20);
    cache.store(job, golden);

    const fs::path record = cache.pathFor(job.cacheKey());
    const auto stored = fs::last_write_time(record);

    // contains() is a pure probe (smtsim-sweep --dry-run must not
    // perturb the LRU order it is predicting against)...
    lruTick();
    ASSERT_TRUE(cache.contains(job));
    EXPECT_EQ(fs::last_write_time(record), stored);

    // ...while a real hit marks the record recently used.
    lruTick();
    JobResult out;
    ASSERT_TRUE(cache.load(job, &out));
    EXPECT_GT(fs::last_write_time(record), stored);
}

TEST_F(LabCacheTest, TouchedRecordSurvivesEviction)
{
    const std::vector<Job> jobs = distinctJobs(4);
    std::vector<JobResult> golden;
    for (const Job &job : jobs)
        golden.push_back(simulateJob(job));

    std::uint64_t per;
    {
        const ResultCache sizer(cacheDir());
        sizer.store(jobs[0], golden[0]);
        per = sizer.diskBytes();
        fs::remove_all(cacheDir());
    }

    const ResultCache cache(cacheDir(), 2 * per + per / 2);
    cache.store(jobs[0], golden[0]);
    lruTick();
    cache.store(jobs[1], golden[1]);
    lruTick();

    // Touch the oldest record, then add a third: the *untouched*
    // one must be the eviction victim.
    JobResult out;
    ASSERT_TRUE(cache.load(jobs[0], &out));
    lruTick();
    cache.store(jobs[2], golden[2]);
    cache.enforceLimit();

    EXPECT_TRUE(cache.contains(jobs[0]));
    EXPECT_FALSE(cache.contains(jobs[1]));
    EXPECT_TRUE(cache.contains(jobs[2]));
}

TEST_F(LabCacheTest, ConstructionTrimsAPreexistingOversizedDir)
{
    const std::vector<Job> jobs = distinctJobs(5);
    std::uint64_t per = 0;
    {
        const ResultCache unbounded(cacheDir());
        for (const Job &job : jobs) {
            unbounded.store(job, simulateJob(job));
            lruTick();
        }
        per = unbounded.diskBytes() / jobs.size();
    }

    // A daemon restarting with --cache-max-mb over yesterday's
    // oversized directory trims it up front.
    const ResultCache bounded(cacheDir(), 2 * per + per / 2);
    EXPECT_LE(bounded.diskBytes(), bounded.maxBytes());
    EXPECT_TRUE(bounded.contains(jobs[4]));
    EXPECT_FALSE(bounded.contains(jobs[0]));
}

TEST_F(LabCacheTest, SweepUnderTinyBudgetStillCompletes)
{
    const std::vector<Job> jobs = smallGrid();
    LabOptions opts;
    opts.num_threads = 2;
    opts.cache_dir = cacheDir();
    opts.cache_max_bytes = 1;   // nothing fits; everything evicts

    const ResultSet rs = runJobs(jobs, opts);
    EXPECT_EQ(rs.failures(), 0u);
    EXPECT_EQ(rs.cacheHits(), 0u);

    // The cache is useless at this budget but never harmful.
    const ResultSet again = runJobs(jobs, opts);
    EXPECT_EQ(again.failures(), 0u);
}
