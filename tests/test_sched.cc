#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "sched/ddg.hh"
#include "sched/list_scheduler.hh"
#include "sched/standby_scheduler.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

Insn
ins(Op op, RegIndex rd, RegIndex rs, RegIndex rt,
    std::int32_t imm = 0)
{
    return Insn{op, rd, rs, rt, imm};
}

/** Multiset equality of instruction words (permutation check). */
bool
isPermutation(const std::vector<Insn> &a, const std::vector<Insn> &b)
{
    if (a.size() != b.size())
        return false;
    std::map<std::uint32_t, int> count;
    for (const Insn &i : a)
        ++count[encode(i)];
    for (const Insn &i : b)
        --count[encode(i)];
    return std::all_of(count.begin(), count.end(),
                       [](const auto &kv) {
                           return kv.second == 0;
                       });
}

/**
 * Verify @p order respects every dependence edge of the original
 * body (using pointer-identity via encoded words and positions).
 */
bool
respectsDependences(const std::vector<Insn> &body,
                    const std::vector<Insn> &order)
{
    // Map each body instruction to its position in the new order.
    // Duplicate encodings are matched in order, which is sound for
    // checking dependences between identical instructions.
    std::vector<int> pos(body.size(), -1);
    std::vector<char> used(order.size(), 0);
    for (size_t i = 0; i < body.size(); ++i) {
        for (size_t j = 0; j < order.size(); ++j) {
            if (!used[j] && encode(order[j]) == encode(body[i])) {
                pos[i] = static_cast<int>(j);
                used[j] = 1;
                break;
            }
        }
        if (pos[i] < 0)
            return false;
    }
    const DepGraph graph(body);
    for (const DepEdge &e : graph.edges()) {
        if (pos[e.from] >= pos[e.to])
            return false;
    }
    return true;
}

} // namespace

TEST(DepGraphTest, TrueDependence)
{
    // add r1 <- r2, r3; add r5 <- r1, r3.
    const std::vector<Insn> body = {
        ins(Op::ADD, 1, 2, 3),
        ins(Op::ADD, 5, 1, 3),
    };
    const DepGraph g(body);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0].from, 0);
    EXPECT_EQ(g.edges()[0].to, 1);
    // ALU result latency 2 -> distance 3 (the pipeline rule).
    EXPECT_EQ(g.edges()[0].min_distance, 3);
}

TEST(DepGraphTest, TrueAndAntiDependenceTogether)
{
    // add r1 <- r2, r3; add r2 <- r1, r3: RAW on r1, WAR on r2.
    const std::vector<Insn> body = {
        ins(Op::ADD, 1, 2, 3),
        ins(Op::ADD, 2, 1, 3),
    };
    const DepGraph g(body);
    ASSERT_EQ(g.edges().size(), 2u);
    bool saw_true = false, saw_anti = false;
    for (const DepEdge &e : g.edges()) {
        if (e.min_distance == 3)
            saw_true = true;
        if (e.min_distance == 1)
            saw_anti = true;
    }
    EXPECT_TRUE(saw_true);
    EXPECT_TRUE(saw_anti);
}

TEST(DepGraphTest, AntiDependence)
{
    // add r2 <- r1; add r1 <- r3 (WAR).
    const std::vector<Insn> body = {
        ins(Op::ADD, 2, 1, 0),
        ins(Op::ADD, 1, 3, 0),
    };
    const DepGraph g(body);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0].min_distance, 1);
}

TEST(DepGraphTest, OutputDependence)
{
    const std::vector<Insn> body = {
        ins(Op::MUL, 1, 2, 3),
        ins(Op::ADD, 1, 4, 5),
    };
    const DepGraph g(body);
    ASSERT_EQ(g.edges().size(), 1u);
    // WAW waits for the multiplier result (latency 6) + 1.
    EXPECT_EQ(g.edges()[0].min_distance, 7);
}

TEST(DepGraphTest, MemoryOrderPreserved)
{
    const std::vector<Insn> body = {
        ins(Op::LW, 0, 9, 1, 0),
        ins(Op::SW, 0, 9, 2, 4),
        ins(Op::LW, 0, 9, 3, 8),
    };
    const DepGraph g(body);
    // Edges: mem(0->1), mem(1->2); no register deps.
    int mem_edges = 0;
    for (const DepEdge &e : g.edges()) {
        if (e.min_distance == 1)
            ++mem_edges;
    }
    EXPECT_GE(mem_edges, 2);
}

TEST(DepGraphTest, CriticalPathComputation)
{
    // lf f1; fmul f2 <- f1; fadd f3 <- f2: 5 + 7 + 4 = 16.
    const std::vector<Insn> body = {
        ins(Op::LF, 0, 9, 1, 0),
        ins(Op::FMUL, 2, 1, 1),
        ins(Op::FADD, 3, 2, 2),
    };
    const DepGraph g(body);
    EXPECT_EQ(g.criticalPathFrom(0), 5 + 7 + 4);
    EXPECT_EQ(g.criticalPathFrom(1), 7 + 4);
    EXPECT_EQ(g.criticalPathFrom(2), 4);
}

TEST(DepGraphTest, ControlInstructionRejected)
{
    const std::vector<Insn> body = {ins(Op::BEQ, 0, 1, 2)};
    EXPECT_THROW(DepGraph g(body), FatalError);
}

TEST(ListSchedulerTest, OutputIsValidPermutation)
{
    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult r = listSchedule(body);
    EXPECT_TRUE(isPermutation(body, r.order));
    EXPECT_TRUE(respectsDependences(body, r.order));
    EXPECT_EQ(r.order.size(), r.issue_cycle.size());
}

TEST(ListSchedulerTest, ShortensEstimatedLength)
{
    // Source order interleaves dependent FP ops; the scheduler
    // hoists independent loads, shortening the estimate below the
    // naive serial placement.
    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult r = listSchedule(body);

    // Naive estimate: issue in source order, one per cycle, waiting
    // out every dependence.
    const DepGraph g(body);
    std::vector<int> naive(body.size(), 1);
    int cycle = 1;
    for (int i = 0; i < g.size(); ++i) {
        int earliest = cycle;
        for (int e : g.preds(i)) {
            earliest =
                std::max(earliest, naive[g.edge(e).from] +
                                       g.edge(e).min_distance);
        }
        naive[i] = earliest;
        cycle = earliest + 1;
    }
    const int naive_len =
        naive.back() +
        opMeta(body.back().op).result_latency;
    EXPECT_LT(r.length, naive_len);
}

TEST(ListSchedulerTest, IssueCyclesAreMonotonic)
{
    const ScheduleResult r = listSchedule(lk1LoopBody());
    for (size_t i = 1; i < r.issue_cycle.size(); ++i)
        EXPECT_GT(r.issue_cycle[i], r.issue_cycle[i - 1]);
}

TEST(ListSchedulerTest, EmptyBody)
{
    const ScheduleResult r = listSchedule({});
    EXPECT_TRUE(r.order.empty());
    EXPECT_EQ(r.length, 0);
}

TEST(StandbySchedulerTest, OutputIsValidPermutation)
{
    StandbySchedulerConfig cfg;
    cfg.num_slots = 4;
    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult r = standbySchedule(body, cfg);
    EXPECT_TRUE(isPermutation(body, r.order));
    EXPECT_TRUE(respectsDependences(body, r.order));
}

TEST(StandbySchedulerTest, StandbyBeatsNoStandby)
{
    // The paper's point: consulting the standby table issues
    // instructions a plain reservation-table scheduler would delay.
    StandbySchedulerConfig with;
    with.num_slots = 4;
    StandbySchedulerConfig without = with;
    without.use_standby = false;

    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult rw = standbySchedule(body, with);
    const ScheduleResult rn = standbySchedule(body, without);
    EXPECT_LE(rw.length, rn.length);
}

TEST(StandbySchedulerTest, MoreSlotsLengthenOwnShare)
{
    const std::vector<Insn> body = lk1LoopBody();
    StandbySchedulerConfig c1, c8;
    c1.num_slots = 1;
    c8.num_slots = 8;
    const ScheduleResult r1 = standbySchedule(body, c1);
    const ScheduleResult r8 = standbySchedule(body, c8);
    EXPECT_LE(r1.length, r8.length);
}

TEST(StandbySchedulerTest, SecondLoadStoreUnitShortensSchedule)
{
    StandbySchedulerConfig one;
    one.num_slots = 8;
    StandbySchedulerConfig two = one;
    two.fus.load_store = 2;
    const std::vector<Insn> body = lk1LoopBody();
    EXPECT_LE(standbySchedule(body, two).length,
              standbySchedule(body, one).length);
}

TEST(StandbySchedulerTest, SingleSlotNearListSchedule)
{
    // With one slot, strategy B degenerates to list scheduling with
    // full resource availability.
    StandbySchedulerConfig cfg;
    cfg.num_slots = 1;
    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult b = standbySchedule(body, cfg);
    const ScheduleResult a = listSchedule(body);
    EXPECT_LE(std::abs(b.length - a.length), 2);
}
