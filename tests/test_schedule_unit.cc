#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/schedule.hh"

using namespace smtsim;

namespace
{

IssuedOp
makeOp(Op op, int slot, Cycle arrive)
{
    IssuedOp io;
    io.insn.op = op;
    io.slot = slot;
    io.arrive = arrive;
    return io;
}

} // namespace

TEST(ScheduleUnit, GrantsInPriorityOrder)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 4);
    su.submit(makeOp(Op::ADD, 0, 1));
    su.submit(makeOp(Op::ADD, 2, 1));

    // Priority order: slot 2 first.
    const auto grants = su.select(1, {2, 3, 0, 1});
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].op.slot, 2);
    // Slot 0 still waits in its standby station.
    EXPECT_TRUE(su.slotBusy(0));
    EXPECT_FALSE(su.slotBusy(2));
}

TEST(ScheduleUnit, LoserGrantedNextCycle)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 4);
    su.submit(makeOp(Op::ADD, 0, 1));
    su.submit(makeOp(Op::ADD, 1, 1));
    ASSERT_EQ(su.select(1, {0, 1, 2, 3}).size(), 1u);
    const auto second = su.select(2, {0, 1, 2, 3});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].op.slot, 1);
}

TEST(ScheduleUnit, IssueLatencyBlocksUnit)
{
    // Load/store issue latency 2: after a grant at cycle 1 the unit
    // refuses new work at cycle 2 and accepts again at cycle 3.
    ScheduleUnit su(FuClass::LoadStore, 1, 2);
    su.submit(makeOp(Op::LW, 0, 1));
    su.submit(makeOp(Op::LW, 1, 1));
    EXPECT_EQ(su.select(1, {0, 1}).size(), 1u);
    EXPECT_EQ(su.select(2, {0, 1}).size(), 0u);
    const auto g = su.select(3, {0, 1});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0].op.slot, 1);
}

TEST(ScheduleUnit, TwoUnitsGrantTwoPerCycle)
{
    ScheduleUnit su(FuClass::LoadStore, 2, 4);
    su.submit(makeOp(Op::LW, 0, 1));
    su.submit(makeOp(Op::LW, 1, 1));
    su.submit(makeOp(Op::LW, 2, 1));
    const auto g = su.select(1, {0, 1, 2, 3});
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0].op.slot, 0);
    EXPECT_EQ(g[0].unit, 0);
    EXPECT_EQ(g[1].op.slot, 1);
    EXPECT_EQ(g[1].unit, 1);
    EXPECT_TRUE(su.slotBusy(2));
}

TEST(ScheduleUnit, ArrivalCycleRespected)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 2);
    su.submit(makeOp(Op::ADD, 0, 5));
    EXPECT_EQ(su.select(4, {0, 1}).size(), 0u);
    EXPECT_TRUE(su.slotBusy(0));    // occupied even before arrival
    EXPECT_EQ(su.select(5, {0, 1}).size(), 1u);
}

TEST(ScheduleUnit, DoubleSubmitPanics)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 2);
    su.submit(makeOp(Op::ADD, 0, 1));
    EXPECT_THROW(su.submit(makeOp(Op::SUB, 0, 2)), PanicError);
}

TEST(ScheduleUnit, FlushSlotDropsWaitingWork)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 2);
    su.submit(makeOp(Op::ADD, 0, 1));
    su.submit(makeOp(Op::ADD, 1, 1));
    su.select(1, {0, 1});           // grants slot 0, slot 1 waits
    su.flushSlot(1);
    EXPECT_FALSE(su.slotBusy(1));
    EXPECT_EQ(su.select(2, {0, 1}).size(), 0u);
}

TEST(ScheduleUnit, FlushSlotDropsIncomingToo)
{
    ScheduleUnit su(FuClass::IntAlu, 1, 2);
    su.submit(makeOp(Op::ADD, 1, 3));
    EXPECT_TRUE(su.slotBusy(1));
    su.flushSlot(1);
    EXPECT_FALSE(su.slotBusy(1));
}

TEST(ScheduleUnit, MixedLatencyOpsSetPerOpIssueLatency)
{
    // FABS (issue 1) then another op next cycle is fine.
    ScheduleUnit su(FuClass::FpAdd, 1, 2);
    su.submit(makeOp(Op::FABS, 0, 1));
    EXPECT_EQ(su.select(1, {0, 1}).size(), 1u);
    su.submit(makeOp(Op::FADD, 1, 2));
    EXPECT_EQ(su.select(2, {0, 1}).size(), 1u);
}
