#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace smtsim;

namespace
{

Workload
make(RecurrenceVariant variant, int n = 60)
{
    RecurrenceParams p;
    p.n = n;
    p.variant = variant;
    return makeRecurrence(p);
}

CoreConfig
coreCfg(int slots, bool explicit_rotation)
{
    CoreConfig cfg;
    cfg.num_slots = slots;
    if (explicit_rotation)
        cfg.rotation_mode = RotationMode::Explicit;
    return cfg;
}

} // namespace

TEST(Recurrence, SequentialCorrectEverywhere)
{
    const Workload w = make(RecurrenceVariant::Sequential);
    EXPECT_TRUE(runInterp(w, 1).ok);
    EXPECT_TRUE(runBaseline(w).ok);
    EXPECT_TRUE(runCore(w, coreCfg(1, false)).ok);
}

TEST(Recurrence, QueueDoacrossCorrectAcrossSlotCounts)
{
    const Workload w = make(RecurrenceVariant::DoacrossQueue);
    for (int slots : {1, 2, 3, 4, 6, 8}) {
        const Outcome o = runCore(w, coreCfg(slots, true));
        EXPECT_TRUE(o.ok) << "slots=" << slots << ": " << o.error;
    }
    EXPECT_TRUE(runInterp(w, 4).ok);
}

TEST(Recurrence, MemoryDoacrossCorrectAcrossSlotCounts)
{
    const Workload w = make(RecurrenceVariant::DoacrossMemory);
    for (int slots : {1, 2, 4, 8}) {
        const Outcome o = runCore(w, coreCfg(slots, false));
        EXPECT_TRUE(o.ok) << "slots=" << slots << ": " << o.error;
    }
}

TEST(Recurrence, MoreSlotsThanIterations)
{
    const Workload w = make(RecurrenceVariant::DoacrossQueue, 3);
    EXPECT_TRUE(runCore(w, coreCfg(8, true)).ok);
}

TEST(Recurrence, SingleIteration)
{
    for (auto v : {RecurrenceVariant::Sequential,
                   RecurrenceVariant::DoacrossQueue,
                   RecurrenceVariant::DoacrossMemory}) {
        const Workload w = make(v, 1);
        EXPECT_TRUE(runCore(w, coreCfg(4, true)).ok)
            << static_cast<int>(v);
    }
}

TEST(Recurrence, QueueBeatsMemoryCommunication)
{
    // Section 2.3.1's rationale: register-transfer-level relaying
    // has far less overhead than store + flag spinning.
    const Workload q = make(RecurrenceVariant::DoacrossQueue, 200);
    const Workload m =
        make(RecurrenceVariant::DoacrossMemory, 200);
    const Outcome qo = runCore(q, coreCfg(4, true));
    const Outcome mo = runCore(m, coreCfg(4, false));
    ASSERT_TRUE(qo.ok) << qo.error;
    ASSERT_TRUE(mo.ok) << mo.error;
    EXPECT_LT(qo.stats.cycles, mo.stats.cycles);
}

TEST(Recurrence, QueueDoacrossBeatsSequential)
{
    const Workload q = make(RecurrenceVariant::DoacrossQueue, 200);
    const Workload s = make(RecurrenceVariant::Sequential, 200);
    const Outcome qo = runCore(q, coreCfg(4, true));
    const Outcome so = runCore(s, coreCfg(1, false));
    ASSERT_TRUE(qo.ok && so.ok);
    EXPECT_LT(qo.stats.cycles, so.stats.cycles);
}

TEST(Recurrence, DeterministicQueueVariant)
{
    const Workload w = make(RecurrenceVariant::DoacrossQueue, 80);
    const Outcome a = runCore(w, coreCfg(4, true));
    const Outcome b = runCore(w, coreCfg(4, true));
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}
