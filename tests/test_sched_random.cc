#include <map>

#include <gtest/gtest.h>

#include "base/random.hh"
#include "sched/ddg.hh"
#include "sched/list_scheduler.hh"
#include "sched/standby_scheduler.hh"

using namespace smtsim;

namespace
{

/**
 * Generate a random straight-line body of data/memory instructions
 * with realistic register pressure (no control instructions, which
 * the schedulers reject by contract).
 */
std::vector<Insn>
randomBody(std::uint64_t seed, int length, bool mem_heavy = false)
{
    Rng rng(seed);
    std::vector<Insn> body;
    for (int i = 0; i < length; ++i) {
        Insn insn;
        // mem_heavy skews half of the mix onto the load/store
        // unit, the situation the standby table targets.
        std::uint64_t kind = rng.nextBelow(8);
        if (mem_heavy && rng.nextBelow(2) == 0)
            kind = 6 + rng.nextBelow(2);
        switch (kind) {
          case 0:
          case 1:
            insn.op = Op::ADD;
            insn.rd = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rs = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rt = static_cast<RegIndex>(1 + rng.nextBelow(12));
            break;
          case 2:
            insn.op = Op::SLL;
            insn.rd = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rs = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.imm = static_cast<std::int32_t>(
                1 + rng.nextBelow(8));
            break;
          case 3:
            insn.op = Op::MUL;
            insn.rd = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rs = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rt = static_cast<RegIndex>(1 + rng.nextBelow(12));
            break;
          case 4:
            insn.op = Op::FADD;
            insn.rd = static_cast<RegIndex>(rng.nextBelow(10));
            insn.rs = static_cast<RegIndex>(rng.nextBelow(10));
            insn.rt = static_cast<RegIndex>(rng.nextBelow(10));
            break;
          case 5:
            insn.op = Op::FMUL;
            insn.rd = static_cast<RegIndex>(rng.nextBelow(10));
            insn.rs = static_cast<RegIndex>(rng.nextBelow(10));
            insn.rt = static_cast<RegIndex>(rng.nextBelow(10));
            break;
          case 6:
            insn.op = Op::LW;
            insn.rt = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rs = 20;
            insn.imm = static_cast<std::int32_t>(
                4 * rng.nextBelow(16));
            break;
          default:
            insn.op = Op::SW;
            insn.rt = static_cast<RegIndex>(1 + rng.nextBelow(12));
            insn.rs = 20;
            insn.imm = static_cast<std::int32_t>(
                4 * rng.nextBelow(16));
            break;
        }
        body.push_back(insn);
    }
    return body;
}

bool
isPermutation(const std::vector<Insn> &a, const std::vector<Insn> &b)
{
    if (a.size() != b.size())
        return false;
    std::map<std::uint32_t, int> count;
    for (const Insn &i : a)
        ++count[encode(i)];
    for (const Insn &i : b)
        --count[encode(i)];
    for (const auto &[word, c] : count) {
        if (c != 0)
            return false;
    }
    return true;
}

/** Match order instructions back to body positions (first-fit). */
bool
respectsDependences(const std::vector<Insn> &body,
                    const std::vector<Insn> &order)
{
    std::vector<int> pos(body.size(), -1);
    std::vector<char> used(order.size(), 0);
    for (size_t i = 0; i < body.size(); ++i) {
        for (size_t j = 0; j < order.size(); ++j) {
            if (!used[j] && encode(order[j]) == encode(body[i])) {
                pos[i] = static_cast<int>(j);
                used[j] = 1;
                break;
            }
        }
        if (pos[i] < 0)
            return false;
    }
    const DepGraph graph(body);
    for (const DepEdge &e : graph.edges()) {
        if (pos[e.from] >= pos[e.to])
            return false;
    }
    return true;
}

class RandomBodies : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(RandomBodies, ListScheduleIsValid)
{
    const std::vector<Insn> body =
        randomBody(static_cast<std::uint64_t>(GetParam()), 24);
    const ScheduleResult r = listSchedule(body);
    EXPECT_TRUE(isPermutation(body, r.order));
    EXPECT_TRUE(respectsDependences(body, r.order));
    EXPECT_GT(r.length, 0);
}

TEST_P(RandomBodies, StandbyScheduleIsValid)
{
    const std::vector<Insn> body =
        randomBody(static_cast<std::uint64_t>(GetParam()), 24);
    for (int slots : {1, 4, 8}) {
        StandbySchedulerConfig cfg;
        cfg.num_slots = slots;
        const ScheduleResult r = standbySchedule(body, cfg);
        EXPECT_TRUE(isPermutation(body, r.order))
            << "slots " << slots;
        EXPECT_TRUE(respectsDependences(body, r.order))
            << "slots " << slots;
    }
}

TEST_P(RandomBodies, StandbyRarelyHurtsAndOnlySlightly)
{
    // Greedy list scheduling is a heuristic: consulting the standby
    // table occasionally commits an instruction early and costs a
    // few cycles, but it can never blow up the schedule.
    const std::vector<Insn> body =
        randomBody(static_cast<std::uint64_t>(GetParam()) + 1000,
                   20);
    StandbySchedulerConfig with;
    with.num_slots = 6;
    StandbySchedulerConfig without = with;
    without.use_standby = false;
    EXPECT_LE(standbySchedule(body, with).length,
              standbySchedule(body, without).length + 8);
}

TEST(RandomBodiesAggregate, StandbyWinsOnMemorySkewedKernels)
{
    // The paper's claim: when one unit class is the bottleneck (as
    // in LK1's load/store traffic), the standby table shortens
    // schedules in aggregate.
    long with_total = 0;
    long without_total = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const std::vector<Insn> body =
            randomBody(seed + 5000, 20, /*mem_heavy=*/true);
        StandbySchedulerConfig with;
        with.num_slots = 6;
        StandbySchedulerConfig without = with;
        without.use_standby = false;
        with_total += standbySchedule(body, with).length;
        without_total += standbySchedule(body, without).length;
    }
    EXPECT_LT(with_total, without_total);
}

TEST(RandomBodiesAggregate, StandbyIsAWashOnBalancedKernels)
{
    // With a balanced mix the standby table neither helps nor
    // hurts meaningfully (the paper saw 0-2.2% on real code).
    long with_total = 0;
    long without_total = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const std::vector<Insn> body =
            randomBody(seed + 9000, 20);
        StandbySchedulerConfig with;
        with.num_slots = 6;
        StandbySchedulerConfig without = with;
        without.use_standby = false;
        with_total += standbySchedule(body, with).length;
        without_total += standbySchedule(body, without).length;
    }
    const double ratio = static_cast<double>(with_total) /
                         static_cast<double>(without_total);
    EXPECT_LT(ratio, 1.03);
}

TEST_P(RandomBodies, CriticalPathIsScheduleLowerBound)
{
    const std::vector<Insn> body =
        randomBody(static_cast<std::uint64_t>(GetParam()) + 2000,
                   20);
    const DepGraph graph(body);
    int cp = 0;
    for (int i = 0; i < graph.size(); ++i)
        cp = std::max(cp, graph.criticalPathFrom(i));
    const ScheduleResult r = listSchedule(body);
    EXPECT_GE(r.length, cp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBodies,
                         ::testing::Range(1, 21));
