/**
 * @file
 * smtsim-serve: long-running simulation service daemon.
 *
 *     smtsim-serve --socket PATH [options]
 *     smtsim-serve --worker              (internal: worker mode)
 *
 * Options:
 *     --socket PATH      unix socket to listen on (required)
 *     --workers N        worker processes / dispatcher threads
 *                        (default: host cores)
 *     --queue-max N      admission queue depth; submissions past it
 *                        get "overloaded" responses (default 4096)
 *     --cache-dir PATH   shared result cache (default
 *                        .smtsim-cache)
 *     --no-cache         disable the result cache
 *     --cache-max-mb N   cache LRU size budget in MiB
 *     --job-timeout SEC  per-job wall budget; a worker exceeding it
 *                        is killed (default 300)
 *     --retries N        crash retries per job (default 2)
 *     --no-lint          skip the admission lint gate (on by
 *                        default: specs whose workload program has
 *                        error-level static diagnostics are
 *                        rejected before consuming a queue slot)
 *
 * The daemon serves until a client sends the "shutdown" op or it
 * receives SIGINT/SIGTERM. Protocol and operational notes live in
 * docs/SERVE.md.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/sockio.hh"
#include "base/strutil.hh"
#include "serve/serve.hh"

using namespace smtsim;
using namespace smtsim::serve;

namespace
{

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [options]   (see file "
                 "header or docs/SERVE.md)\n",
                 argv0);
    std::exit(2);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "smtsim-serve: %s\n", msg.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode: the daemon re-executes this binary with
    // --worker as the whole command line; don't let stray extra
    // flags change its meaning.
    if (argc == 2 && std::string(argv[1]) == "--worker")
        return workerMain();

    ServeOptions opts;
    opts.cache_dir = ".smtsim-cache";

    auto need_value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opts.socket_path = need_value(i);
        } else if (arg == "--workers") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v <= 0)
                die("--workers needs a positive integer");
            opts.num_workers = static_cast<int>(v);
        } else if (arg == "--queue-max") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v <= 0)
                die("--queue-max needs a positive integer");
            opts.queue_max = static_cast<std::size_t>(v);
        } else if (arg == "--cache-dir") {
            opts.cache_dir = need_value(i);
        } else if (arg == "--no-cache") {
            opts.cache_dir.clear();
        } else if (arg == "--cache-max-mb") {
            unsigned long long v = 0;
            if (!parseUint(need_value(i), &v) || v == 0)
                die("--cache-max-mb needs a positive integer");
            opts.cache_max_bytes = v * 1024ull * 1024ull;
        } else if (arg == "--job-timeout") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v <= 0)
                die("--job-timeout needs a positive integer "
                    "(seconds)");
            opts.job_timeout_seconds = static_cast<double>(v);
        } else if (arg == "--retries") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v < 0)
                die("--retries needs a non-negative integer");
            opts.max_retries = static_cast<int>(v);
        } else if (arg == "--no-lint") {
            opts.lint_admission = false;
        } else {
            usage(argv[0]);
        }
    }
    if (opts.socket_path.empty())
        die("--socket is required");

    raiseFdLimit();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    Server server(std::move(opts));
    std::string error;
    if (!server.start(&error))
        die("cannot start: " + error);
    std::fprintf(stderr, "smtsim-serve: listening\n");
    std::fflush(stderr);

    while (g_signal == 0) {
        if (server.waitFor(250))
            break;
    }
    server.stop();

    const ServerStats s = server.stats();
    std::fprintf(stderr,
                 "smtsim-serve: served %llu submission(s), %llu "
                 "job(s) (%llu executed, %llu cache hit(s), %llu "
                 "coalesced), %llu shed, %llu worker restart(s)\n",
                 static_cast<unsigned long long>(s.submissions),
                 static_cast<unsigned long long>(s.jobs_submitted),
                 static_cast<unsigned long long>(s.executed),
                 static_cast<unsigned long long>(s.cache_hits),
                 static_cast<unsigned long long>(s.coalesced),
                 static_cast<unsigned long long>(s.overloaded),
                 static_cast<unsigned long long>(s.worker_restarts));
    return 0;
}
