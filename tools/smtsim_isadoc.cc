/**
 * @file
 * smtsim-isadoc: generate the ISA reference (docs/ISA.md) from the
 * live operation tables, so the documentation can never drift from
 * the implementation.
 *
 *     smtsim-isadoc > docs/ISA.md
 */

#include <cstdio>

#include "isa/op.hh"
#include "machine/fu_pool.hh"

using namespace smtsim;

namespace
{

const char *
formatSyntax(Format fmt, const char *mnemonic)
{
    static char buf[96];
    const char *pattern = "";
    switch (fmt) {
      case Format::R3: pattern = "%s rd, rs, rt"; break;
      case Format::R2: pattern = "%s rd, rs"; break;
      case Format::SHI: pattern = "%s rd, rs, shamt"; break;
      case Format::I: pattern = "%s rt, rs, imm16"; break;
      case Format::LUIF: pattern = "%s rt, imm16"; break;
      case Format::FR3: pattern = "%s fd, fs, ft"; break;
      case Format::FR2: pattern = "%s fd, fs"; break;
      case Format::FCMP: pattern = "%s rd, fs, ft"; break;
      case Format::ITOFF: pattern = "%s fd, rs"; break;
      case Format::FTOIF: pattern = "%s rd, fs"; break;
      case Format::MEM: pattern = "%s rt|ft, imm16(rs)"; break;
      case Format::BR2: pattern = "%s rs, rt, label"; break;
      case Format::BR1: pattern = "%s rs, label"; break;
      case Format::JF: pattern = "%s label"; break;
      case Format::JRF: pattern = "%s rs"; break;
      case Format::JALRF: pattern = "%s rd, rs"; break;
      case Format::THR0: pattern = "%s"; break;
      case Format::THR1D: pattern = "%s rd"; break;
      case Format::THR2: pattern = "%s rRead, rWrite"; break;
      case Format::ROT:
        pattern = "%s implicit|explicit, interval";
        break;
    }
    std::snprintf(buf, sizeof(buf), pattern, mnemonic);
    return buf;
}

const char *
describe(Op op)
{
    switch (op) {
      case Op::ADD: return "rd = rs + rt";
      case Op::SUB: return "rd = rs - rt";
      case Op::AND_: return "rd = rs & rt";
      case Op::OR_: return "rd = rs | rt";
      case Op::XOR_: return "rd = rs ^ rt";
      case Op::NOR_: return "rd = ~(rs | rt)";
      case Op::SLT: return "rd = (rs < rt), signed";
      case Op::SLTU: return "rd = (rs < rt), unsigned";
      case Op::ADDI: return "rt = rs + sext(imm)";
      case Op::SLTI: return "rt = (rs < sext(imm)), signed";
      case Op::ANDI: return "rt = rs & zext(imm)";
      case Op::ORI: return "rt = rs | zext(imm)";
      case Op::XORI: return "rt = rs ^ zext(imm)";
      case Op::LUI: return "rt = imm << 16";
      case Op::SLL: return "rd = rs << shamt";
      case Op::SRL: return "rd = rs >> shamt (logical)";
      case Op::SRA: return "rd = rs >> shamt (arithmetic)";
      case Op::SLLV: return "rd = rs << (rt & 31)";
      case Op::SRLV: return "rd = rs >> (rt & 31) (logical)";
      case Op::SRAV: return "rd = rs >> (rt & 31) (arithmetic)";
      case Op::MUL: return "rd = low32(rs * rt)";
      case Op::DIVQ: return "rd = rs / rt (signed; x/0 = 0)";
      case Op::REMQ: return "rd = rs % rt (signed; x%0 = 0)";
      case Op::FADD: return "fd = fs + ft";
      case Op::FSUB: return "fd = fs - ft";
      case Op::FABS: return "fd = |fs|";
      case Op::FNEG: return "fd = -fs";
      case Op::FMOV: return "fd = fs";
      case Op::FCMPLT: return "rd = (fs < ft)";
      case Op::FCMPLE: return "rd = (fs <= ft)";
      case Op::FCMPEQ: return "rd = (fs == ft)";
      case Op::ITOF: return "fd = (double)(int32)rs";
      case Op::FTOI: return "rd = (int32)fs (truncating)";
      case Op::FMUL: return "fd = fs * ft";
      case Op::FDIV: return "fd = fs / ft";
      case Op::FSQRT: return "fd = sqrt(fs)";
      case Op::LW: return "rt = mem32[rs + sext(imm)]";
      case Op::SW: return "mem32[rs + sext(imm)] = rt";
      case Op::LF: return "ft = mem64[rs + sext(imm)] (double)";
      case Op::SF: return "mem64[rs + sext(imm)] = ft (double)";
      case Op::PSTW:
        return "as sw, performed only at highest priority";
      case Op::PSTF:
        return "as sf, performed only at highest priority";
      case Op::BEQ: return "branch if rs == rt";
      case Op::BNE: return "branch if rs != rt";
      case Op::BLEZ: return "branch if rs <= 0 (signed)";
      case Op::BGTZ: return "branch if rs > 0 (signed)";
      case Op::BLTZ: return "branch if rs < 0 (signed)";
      case Op::BGEZ: return "branch if rs >= 0 (signed)";
      case Op::J: return "jump (26-bit region target)";
      case Op::JAL: return "jump and link (r31 = pc + 4)";
      case Op::JR: return "jump to rs";
      case Op::JALR: return "rd = pc + 4; jump to rs";
      case Op::NOP: return "no operation";
      case Op::HALT: return "terminate this thread";
      case Op::FASTFORK:
        return "start a thread at pc+4 on every idle slot "
               "(registers copied)";
      case Op::CHGPRI:
        return "rotate thread priorities; waits for the highest "
               "priority and for the slot's in-flight "
               "instructions";
      case Op::KILLT:
        return "kill all other threads (waits for the highest "
               "priority); resets the queue-register network";
      case Op::TID: return "rd = logical processor id";
      case Op::NSLOT: return "rd = number of thread slots";
      case Op::QEN:
        return "map queue registers: reads of rRead dequeue from "
               "the ring predecessor, writes to rWrite enqueue to "
               "the successor";
      case Op::QENF: return "as qen, for FP registers";
      case Op::QDIS: return "unmap all queue registers";
      case Op::SETRMODE:
        return "select rotation mode and interval (privileged)";
      default: return "";
    }
}

} // namespace

int
main()
{
    std::printf(
        "# smtsim ISA reference\n\n"
        "Generated by `smtsim-isadoc` from the live operation "
        "tables\n(`src/isa/op.cc`); regenerate with "
        "`./build/tools/smtsim-isadoc > docs/ISA.md`.\n\n"
        "32-bit fixed-width instructions; 32 integer registers "
        "(`r0` is\nhardwired to zero) and 32 double-precision FP "
        "registers. Branches\nand thread-control instructions "
        "execute inside the decode unit.\nLatencies are the "
        "paper's Table 1 (issue = cycles before the unit\naccepts "
        "another instruction; result = EX stages until the value "
        "is\nusable).\n\n"
        "| mnemonic | syntax | unit | issue | result | semantics "
        "|\n"
        "|----------|--------|------|-------|--------|-----------"
        "|\n");
    for (int i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        const OpMeta &meta = opMeta(op);
        std::printf("| `%s` | `%s` | %s | %d | %d | %s |\n",
                    meta.mnemonic,
                    formatSyntax(meta.format, meta.mnemonic),
                    meta.fu == FuClass::None
                        ? (isBranchOp(op) ? "decode (branch)"
                                          : "decode")
                        : fuClassName(meta.fu),
                    meta.issue_latency, meta.result_latency,
                    describe(op));
    }
    std::printf(
        "\n## Pseudo-instructions\n\n"
        "| pseudo | expansion |\n|--------|-----------|\n"
        "| `la rd, symbol` | `lui` + `ori` with the symbol's "
        "address |\n"
        "| `li rd, imm32` | `lui` + `ori` |\n"
        "| `mv rd, rs` | `add rd, rs, r0` |\n"
        "| `b label` | `beq r0, r0, label` |\n"
        "\n## Directives\n\n"
        "`.text`, `.data`, `.word`, `.float` (8-byte doubles), "
        "`.space`,\n`.align`, `.ascii`, `.asciiz`, `.equ`. "
        "Expressions support `+ - * /`,\nsymbols, and "
        "`%%hi(...)`/`%%lo(...)`.\n");
    return 0;
}
