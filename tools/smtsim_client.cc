/**
 * @file
 * smtsim-client: submit experiment sweeps to a running smtsim-serve
 * daemon and stream the results back.
 *
 *     smtsim-client --socket PATH [options]
 *
 * Operations (default: submit a sweep):
 *     --ping             health check; exit 0 on pong
 *     --stats            print the daemon's counters and per-job
 *                        histograms as tables (with --json -: the
 *                        raw stats JSON)
 *     --shutdown         ask the daemon to shut down cleanly
 *
 * Sweep description (same grammar as smtsim-sweep):
 *     --workload SPEC    workload, repeatable (default
 *                        raytrace:width=24,height=24)
 *     --engine core|both "both" adds a baseline point per workload
 *     --slots LIST       thread-slot counts (default 4)
 *     --frames LIST      context-frame counts; -1 = slots
 *     --lsu LIST         load/store unit counts
 *     --width LIST       per-slot issue widths
 *     --standby on|off|both
 *     --interval LIST    rotation intervals
 *
 * Submission:
 *     --id NAME          submission id echoed in events (default
 *                        "cli")
 *     --wait-ms N        per-event timeout; 0 = wait forever
 *                        (default 0)
 *
 * Output:
 *     --json PATH        write results as JSON ('-' = stdout)
 *     --csv PATH         write results as CSV ('-' = stdout)
 *     --table            print the summary table
 *
 * Exit status: 0 all results ok, 1 failures or overload, 2 usage /
 * connection errors.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/strutil.hh"
#include "base/table.hh"
#include "lab/lab.hh"
#include "serve/serve.hh"

using namespace smtsim;
using namespace smtsim::lab;
using namespace smtsim::serve;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [options]   (see file "
                 "header or docs/SERVE.md)\n",
                 argv0);
    std::exit(2);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "smtsim-client: %s\n", msg.c_str());
    std::exit(2);
}

std::vector<int>
parseIntList(const std::string &opt, const std::string &text,
             int min_value)
{
    std::vector<int> out;
    for (const std::string &item : split(text, ',')) {
        long long v = 0;
        if (!parseInt(item, &v))
            die(opt + ": \"" + trim(item) +
                "\" is not an integer");
        if (v < min_value)
            die(opt + ": value " + std::to_string(v) +
                " is below the minimum " +
                std::to_string(min_value));
        out.push_back(static_cast<int>(v));
    }
    if (out.empty())
        die(opt + ": empty list");
    return out;
}

std::string
formatCount(std::uint64_t v)
{
    return std::to_string(v);
}

/** Render the "stats" payload as two tables: scalar counters, then
 *  one row per histogram with its non-empty log2 buckets. */
void
printStatsTables(const Json &stats, std::ostream &os)
{
    TextTable counters("daemon counters");
    counters.addRow({"counter", "value"});
    for (const auto &[key, value] : stats.members()) {
        if (value.isNumber())
            counters.addRow({key, formatCount(value.asU64())});
    }
    counters.print(os);

    const Json *hists = stats.find("histograms");
    if (hists == nullptr)
        return;
    os << "\n";
    TextTable ht("per-job histograms");
    ht.addRow({"metric", "count", "min", "mean", "max",
               "log2 buckets (lo..hi:n)"});
    for (const auto &[name, h] : hists->members()) {
        const std::uint64_t count = h.at("count").asU64();
        const std::uint64_t sum = h.at("sum").asU64();
        std::string buckets;
        const Json &bs = h.at("buckets");
        for (std::size_t i = 0; i < bs.size(); ++i) {
            const Json &b = bs.at(i);
            if (!buckets.empty())
                buckets += "  ";
            buckets += formatCount(b.at("lo").asU64()) + ".." +
                       formatCount(b.at("hi").asU64()) + ":" +
                       formatCount(b.at("n").asU64());
        }
        char mean[32];
        std::snprintf(mean, sizeof mean, "%.1f",
                      count == 0 ? 0.0
                                 : static_cast<double>(sum) /
                                       static_cast<double>(count));
        ht.addRow({name, formatCount(count),
                   formatCount(h.at("min").asU64()), mean,
                   formatCount(h.at("max").asU64()), buckets});
    }
    ht.print(os);
}

void
writeTextOutput(const std::string &path, const std::string &text,
                const char *what)
{
    if (path == "-") {
        std::cout << text;
        return;
    }
    std::ofstream out(path);
    if (!out)
        die(std::string("cannot open ") + path + " for writing");
    out << text;
    std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string op = "submit";
    std::string id = "cli";
    int wait_ms = -1;
    ExperimentSpec spec;
    spec.name = "smtsim-client";
    std::string engine = "core";
    std::string json_path, csv_path;
    bool want_table = false;

    auto need_value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            socket_path = need_value(i);
        } else if (arg == "--ping" || arg == "--stats" ||
                   arg == "--shutdown") {
            op = arg.substr(2);
        } else if (arg == "--id") {
            id = need_value(i);
        } else if (arg == "--wait-ms") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v < 0)
                die("--wait-ms needs a non-negative integer");
            wait_ms = v == 0 ? -1 : static_cast<int>(v);
        } else if (arg == "--workload") {
            try {
                spec.workloads.push_back(
                    WorkloadSpec::fromString(need_value(i)));
            } catch (const std::exception &e) {
                die(e.what());
            }
        } else if (arg == "--engine") {
            engine = need_value(i);
            if (engine != "core" && engine != "both")
                die("--engine must be core or both");
        } else if (arg == "--slots") {
            spec.slots = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--frames") {
            spec.frames = parseIntList(arg, need_value(i), -1);
        } else if (arg == "--lsu") {
            spec.lsu = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--width") {
            spec.widths = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--interval") {
            spec.rotation_intervals =
                parseIntList(arg, need_value(i), 1);
        } else if (arg == "--standby") {
            const std::string v = need_value(i);
            if (v == "on")
                spec.standby = {true};
            else if (v == "off")
                spec.standby = {false};
            else if (v == "both")
                spec.standby = {false, true};
            else
                die("--standby must be on, off or both");
        } else if (arg == "--json") {
            json_path = need_value(i);
        } else if (arg == "--csv") {
            csv_path = need_value(i);
        } else if (arg == "--table") {
            want_table = true;
        } else {
            usage(argv[0]);
        }
    }
    if (socket_path.empty())
        die("--socket is required");

    Client client;
    std::string error;
    if (!client.connect(socket_path, &error))
        die("cannot connect: " + error);

    if (op == "ping") {
        if (!client.ping(&error))
            die("ping failed: " + error);
        std::printf("pong\n");
        return 0;
    }
    if (op == "stats") {
        Json stats;
        if (!client.stats(&stats, &error))
            die("stats failed: " + error);
        if (!json_path.empty())
            writeTextOutput(json_path, stats.dump(2) + "\n",
                            "JSON");
        else
            printStatsTables(stats, std::cout);
        return 0;
    }
    if (op == "shutdown") {
        if (!client.shutdownServer(&error))
            die("shutdown failed: " + error);
        std::fprintf(stderr, "smtsim-client: daemon says bye\n");
        return 0;
    }

    if (spec.workloads.empty())
        spec.workloads.push_back(WorkloadSpec::rayTrace(24, 24));
    spec.include_baseline = engine == "both";

    const SubmitOutcome out = client.submitAndWait(id, spec,
                                                   wait_ms);
    if (!out.done()) {
        std::fprintf(stderr, "smtsim-client: %s%s%s\n",
                     out.status.c_str(),
                     out.error.empty() ? "" : ": ",
                     out.error.c_str());
        return out.overloaded() ? 1 : 2;
    }

    ResultSet rs;
    rs.results = out.results;
    if (!json_path.empty())
        writeTextOutput(json_path, rs.toJson().dump(2) + "\n",
                        "JSON");
    if (!csv_path.empty())
        writeTextOutput(csv_path, rs.toCsv(), "CSV");
    if (want_table || (json_path.empty() && csv_path.empty()))
        rs.toTable("sweep results (" + id + ")").print(std::cout);

    std::fprintf(stderr,
                 "%zu job(s): %zu failed, %zu cache hit(s), %zu "
                 "coalesced\n",
                 out.jobs, out.failures, out.cache_hits,
                 out.coalesced);
    return out.failures == 0 ? 0 : 1;
}
