/**
 * @file
 * smtsim-sweep: run a declarative experiment grid through the
 * smtsim::lab engine — in parallel, with resumable content-addressed
 * result caching.
 *
 *     smtsim-sweep [options]
 *
 * Sweep description:
 *     --workload SPEC    workload, repeatable. SPEC is a kind
 *                        (raytrace, livermore1, matmul, bsearch,
 *                        stencil, radiosity, recurrence, listwalk)
 *                        optionally followed by :key=value,...
 *                        e.g. raytrace:width=24,height=24
 *                        (default raytrace:width=24,height=24)
 *     --engine core|baseline|both   grid engine(s); "both" adds a
 *                        sequential baseline point per workload
 *                        (default core)
 *     --slots LIST       comma-separated thread-slot counts (def 4)
 *     --frames LIST      context-frame counts; -1 = slots (def -1)
 *     --lsu LIST         load/store unit counts (default 1)
 *     --width LIST       per-slot issue widths (default 1)
 *     --standby on|off|both        standby stations (default on)
 *     --interval LIST    rotation intervals (default 8)
 *     --cores LIST       simulated core counts. The default {1}
 *                        keeps the classic single-core grid; any
 *                        other list switches every cell to the
 *                        many-core machine engine (docs/MANYCORE.md)
 *                        with shared-L2 remote-data coupling
 *     --max-cycles N     per-job cycle budget override
 *     --timeout SECONDS  per-job wall-clock budget
 *     --replay           functional-first execution: record each
 *                        workload's trace once with the fast
 *                        engine, verify outputs once, time every
 *                        core cell in verified replay mode.
 *                        Results are bit-identical to an
 *                        execute-mode sweep (docs/PERF.md)
 *
 * Execution:
 *     --jobs N           worker threads (default: host cores)
 *     --host-threads N   host threads per machine-engine job
 *                        (0 = sequential reference schedule;
 *                        results are bit-identical either way)
 *     --cache-dir PATH   result cache (default .smtsim-cache)
 *     --cache-max-mb N   cache size budget in MiB; least-recently-
 *                        used records are evicted past it (default
 *                        unbounded)
 *     --no-cache         disable the result cache
 *     --dry-run          print the expanded job grid with a cache
 *                        hit/miss prediction per point, then exit
 *                        without simulating
 *     --quiet            no progress line on stderr
 *
 * Output:
 *     --json PATH        write the full ResultSet as JSON ('-' =
 *                        stdout)
 *     --csv PATH         write the flat CSV ('-' = stdout)
 *     --table            print the summary table (default when no
 *                        --json/--csv target is stdout)
 *
 * Exit status: 0 when every point succeeded, 1 otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/strutil.hh"
#include "lab/lab.hh"

using namespace smtsim;
using namespace smtsim::lab;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]   (see file header or "
                 "docs/LAB.md for options)\n",
                 argv0);
    std::exit(2);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "smtsim-sweep: %s\n", msg.c_str());
    std::exit(2);
}

/** Parse a comma-separated integer list with a per-value floor. */
std::vector<int>
parseIntList(const std::string &opt, const std::string &text,
             int min_value)
{
    std::vector<int> out;
    for (const std::string &item : split(text, ',')) {
        long long v = 0;
        if (!parseInt(item, &v))
            die(opt + ": \"" + trim(item) +
                "\" is not an integer");
        if (v < min_value)
            die(opt + ": value " + std::to_string(v) +
                " is below the minimum " +
                std::to_string(min_value));
        out.push_back(static_cast<int>(v));
    }
    if (out.empty())
        die(opt + ": empty list");
    return out;
}

void
writeTextOutput(const std::string &path, const std::string &text,
                const char *what)
{
    if (path == "-") {
        std::cout << text;
        return;
    }
    std::ofstream out(path);
    if (!out)
        die(std::string("cannot open ") + path + " for writing");
    out << text;
    std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec;
    spec.name = "smtsim-sweep";
    LabOptions opts;
    opts.cache_dir = ".smtsim-cache";
    std::string engine = "core";
    std::string json_path, csv_path;
    bool want_table = false;
    bool quiet = false;
    bool dry_run = false;

    auto need_value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload") {
            try {
                spec.workloads.push_back(
                    WorkloadSpec::fromString(need_value(i)));
            } catch (const std::exception &e) {
                die(e.what());
            }
        } else if (arg == "--engine") {
            engine = need_value(i);
            if (engine != "core" && engine != "baseline" &&
                engine != "both")
                die("--engine must be core, baseline or both");
        } else if (arg == "--slots") {
            spec.slots = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--frames") {
            spec.frames = parseIntList(arg, need_value(i), -1);
        } else if (arg == "--lsu") {
            spec.lsu = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--width") {
            spec.widths = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--interval") {
            spec.rotation_intervals =
                parseIntList(arg, need_value(i), 1);
        } else if (arg == "--cores") {
            spec.cores = parseIntList(arg, need_value(i), 1);
        } else if (arg == "--host-threads") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v < 0)
                die("--host-threads needs an integer >= 0");
            opts.machine_host_threads = static_cast<int>(v);
        } else if (arg == "--standby") {
            const std::string v = need_value(i);
            if (v == "on")
                spec.standby = {true};
            else if (v == "off")
                spec.standby = {false};
            else if (v == "both")
                spec.standby = {false, true};
            else
                die("--standby must be on, off or both");
        } else if (arg == "--max-cycles") {
            unsigned long long v = 0;
            if (!parseUint(need_value(i), &v) || v == 0)
                die("--max-cycles needs a positive integer");
            opts.max_cycles = v;
        } else if (arg == "--timeout") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v <= 0)
                die("--timeout needs a positive integer (seconds)");
            opts.timeout_seconds = static_cast<double>(v);
        } else if (arg == "--jobs") {
            long long v = 0;
            if (!parseInt(need_value(i), &v) || v <= 0)
                die("--jobs needs a positive integer");
            opts.num_threads = static_cast<int>(v);
        } else if (arg == "--cache-dir") {
            opts.cache_dir = need_value(i);
        } else if (arg == "--cache-max-mb") {
            unsigned long long v = 0;
            if (!parseUint(need_value(i), &v) || v == 0)
                die("--cache-max-mb needs a positive integer");
            opts.cache_max_bytes = v * 1024ull * 1024ull;
        } else if (arg == "--replay") {
            spec.replay = true;
        } else if (arg == "--no-cache") {
            opts.cache_dir.clear();
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--json") {
            json_path = need_value(i);
        } else if (arg == "--csv") {
            csv_path = need_value(i);
        } else if (arg == "--table") {
            want_table = true;
        } else {
            usage(argv[0]);
        }
    }

    if (spec.workloads.empty())
        spec.workloads.push_back(WorkloadSpec::rayTrace(24, 24));
    spec.include_baseline = engine == "both";

    std::vector<Job> jobs;
    try {
        if (engine == "baseline") {
            for (const WorkloadSpec &wl : spec.workloads)
                jobs.push_back(baselineJob(wl.kind + "/baseline",
                                           wl,
                                           spec.baseline_template));
        } else {
            jobs = spec.expand();
        }
    } catch (const std::exception &e) {
        die(e.what());
    }

    if (dry_run) {
        // Predict, don't simulate: probe the cache without touching
        // LRU stamps so a dry run never perturbs eviction order.
        // Keys must match what runJobs() would use, so apply the
        // same sweep-wide cycle clamp before hashing.
        if (opts.max_cycles > 0) {
            for (Job &job : jobs) {
                job.core.max_cycles =
                    std::min(job.core.max_cycles, opts.max_cycles);
                job.baseline.max_cycles = std::min(
                    job.baseline.max_cycles, opts.max_cycles);
            }
        }
        const ResultCache cache(opts.cache_dir);
        std::size_t hits = 0;
        std::printf("%-40s %-16s %s\n", "job", "key", "cache");
        for (const Job &job : jobs) {
            const bool hit = cache.contains(job);
            hits += hit ? 1 : 0;
            std::printf("%-40s %-16s %s\n", job.id.c_str(),
                        job.cacheKey().c_str(),
                        hit ? "hit" : "miss");
        }
        std::printf("%zu job(s): %zu predicted cache hit(s), %zu "
                    "to simulate\n",
                    jobs.size(), hits, jobs.size() - hits);
        return 0;
    }

    if (!quiet) {
        std::fprintf(stderr,
                     "%zu job(s), cache %s\n", jobs.size(),
                     opts.cache_dir.empty()
                         ? "disabled"
                         : opts.cache_dir.c_str());
        if (isatty(fileno(stderr)))
            opts.progress = stderrProgress();
    }

    const ResultSet rs = runJobs(jobs, opts, spec.replay);

    if (!json_path.empty())
        writeTextOutput(json_path, rs.toJson().dump(2) + "\n",
                        "JSON");
    if (!csv_path.empty())
        writeTextOutput(csv_path, rs.toCsv(), "CSV");
    if (want_table || (json_path != "-" && csv_path != "-"))
        rs.toTable("sweep results").print(std::cout);

    std::fprintf(stderr,
                 "%zu job(s): %zu simulated, %zu from cache, %zu "
                 "failed (%.2fs simulation time)\n",
                 rs.results.size(),
                 rs.results.size() - rs.cacheHits(), rs.cacheHits(),
                 rs.failures(), rs.simSeconds());
    if (spec.replay) {
        std::fprintf(stderr,
                     "replay: %zu functional pass(es), %zu cell(s) "
                     "replayed, %zu fell back to execute\n",
                     rs.functional_executions, rs.replays,
                     rs.replay_fallbacks);
    }
    return rs.failures() == 0 ? 0 : 1;
}
