/**
 * @file
 * smtsim-asm: assemble a .s file and print the listing — addresses,
 * machine words, disassembly — plus the symbol table. A quick way
 * to inspect what the assembler produced.
 *
 *     smtsim-asm program.s
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "asmr/assembler.hh"
#include "asmr/program.hh"
#include "isa/insn.hh"

using namespace smtsim;

int
main(int argc, char **argv)
{
    const char *input = nullptr;
    const char *output = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "-o" && i + 1 < argc)
            output = argv[++i];
        else
            input = argv[i];
    }
    if (!input) {
        std::fprintf(stderr,
                     "usage: %s [-o out.smt] program.s\n",
                     argv[0]);
        return 2;
    }
    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", input);
        return 1;
    }
    std::ostringstream oss;
    oss << in.rdbuf();

    try {
        const Program prog = assemble(oss.str());

        if (output) {
            std::ofstream out(output, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", output);
                return 1;
            }
            prog.save(out);
            std::printf("wrote %s (%zu text words, %zu data "
                        "bytes)\n",
                        output, prog.text.size(),
                        prog.data.size());
            return 0;
        }

        // Reverse symbol map for labels in the listing.
        std::printf(".text (%zu instructions, entry 0x%08x)\n",
                    prog.text.size(), prog.entry);
        for (size_t i = 0; i < prog.text.size(); ++i) {
            const Addr addr =
                prog.text_base + static_cast<Addr>(4 * i);
            for (const auto &[name, value] : prog.symbols) {
                if (value == addr)
                    std::printf("%s:\n", name.c_str());
            }
            std::printf("  0x%08x  %08x  %s\n", addr,
                        prog.text[i],
                        disassemble(decode(prog.text[i])).c_str());
        }

        std::printf("\n.data (%zu bytes at 0x%08x)\n",
                    prog.data.size(), prog.data_base);
        std::printf("\nsymbols:\n");
        for (const auto &[name, value] : prog.symbols)
            std::printf("  %-20s 0x%08x\n", name.c_str(), value);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
