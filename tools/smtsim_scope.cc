/**
 * @file
 * smtsim-scope: replay a recorded binary event stream
 * (smtsim-run --trace-out) and inspect the pipeline cycle by cycle.
 *
 *     smtsim-scope [options] trace.bin
 *
 * Options:
 *     --at N     start at cycle N (default: first event cycle)
 *     --dump     print the view at --at and exit (CI mode; the
 *                output is the stable block ScopeModel::dump
 *                renders, suitable for diffing)
 *     --events   list every event with cycle numbers and exit
 *
 * Without --dump/--events an interactive prompt opens:
 *     n        step forward to the next cycle carrying events
 *     b        step backward to the previous event cycle
 *     g N      go to cycle N
 *     d        re-print the current view
 *     q        quit
 *
 * Stepping backward needs no re-simulation: the model replays the
 * stream from keyframes (docs/OBSERVABILITY.md).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/strutil.hh"
#include "base/types.hh"
#include "obs/scope.hh"
#include "obs/sinks.hh"

using namespace smtsim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--at N] [--dump] [--events] "
                 "trace.bin\n",
                 argv0);
    std::exit(2);
}

void
showView(const obs::ScopeModel &model, Cycle c)
{
    obs::ScopeModel::dump(model.viewAt(c), std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    unsigned long long at = 0;
    bool have_at = false;
    bool want_dump = false;
    bool want_events = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--at") {
            if (i + 1 >= argc)
                usage(argv[0]);
            if (!parseUint(argv[++i], &at)) {
                std::fprintf(stderr,
                             "%s: --at needs a non-negative "
                             "integer, got \"%s\"\n",
                             argv[0], argv[i]);
                return 2;
            }
            have_at = true;
        } else if (arg == "--dump") {
            want_dump = true;
        } else if (arg == "--events") {
            want_events = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else {
            path = arg;
        }
    }
    if (path.empty())
        usage(argv[0]);

    try {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        obs::ScopeModel model(obs::readEventStream(in));
        if (model.empty()) {
            std::fprintf(stderr, "%s: empty event stream\n",
                         path.c_str());
            return 1;
        }

        if (want_events) {
            for (Cycle c = model.firstCycle();
                 c != kNeverCycle && c <= model.lastCycle();
                 c = model.nextEventCycle(c)) {
                for (const obs::Event &ev :
                     model.viewAt(c).events)
                    std::cout << obs::formatEvent(ev) << '\n';
            }
            return 0;
        }

        Cycle cursor = have_at
                           ? static_cast<Cycle>(at)
                           : model.firstCycle();
        if (want_dump) {
            showView(model, cursor);
            return 0;
        }

        std::printf("smtsim-scope: %d slot(s), cycles %llu..%llu "
                    "(n/b/g N/d/q)\n",
                    model.numSlots(),
                    (unsigned long long)model.firstCycle(),
                    (unsigned long long)model.lastCycle());
        showView(model, cursor);
        std::string line;
        while (std::printf("scope> "), std::fflush(stdout),
               std::getline(std::cin, line)) {
            std::istringstream iss(line);
            std::string cmd;
            iss >> cmd;
            if (cmd.empty())
                continue;
            if (cmd == "q" || cmd == "quit")
                break;
            if (cmd == "n") {
                const Cycle next = model.nextEventCycle(cursor);
                if (next == kNeverCycle) {
                    std::printf("(at end of stream)\n");
                    continue;
                }
                cursor = next;
            } else if (cmd == "b") {
                const Cycle prev = model.prevEventCycle(cursor);
                if (prev == kNeverCycle) {
                    std::printf("(at start of stream)\n");
                    continue;
                }
                cursor = prev;
            } else if (cmd == "g") {
                unsigned long long target = 0;
                std::string text;
                iss >> text;
                if (!parseUint(text.c_str(), &target)) {
                    std::printf("g needs a cycle number\n");
                    continue;
                }
                cursor = static_cast<Cycle>(target);
            } else if (cmd != "d") {
                std::printf("commands: n b g N d q\n");
                continue;
            }
            showView(model, cursor);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
