/**
 * @file
 * smtsim-lint: static verifier for guest programs.
 *
 *     smtsim-lint [options] program.s [more.s ...]
 *
 * Options:
 *     --json           one JSON object per input file on stdout
 *     --sarif          one SARIF 2.1.0 log per input file on stdout
 *                      (for CI code-scanning annotations)
 *     --werror         treat warnings as errors for the exit code
 *     --queue-depth N  ring FIFO depth assumed by the overflow
 *                      check (default 4, the interpreter default)
 *     --slots N        issue-slot count assumed by the cross-slot
 *                      concurrency passes (default 4; Q009+ and
 *                      S001, docs/ANALYSIS.md)
 *
 * Inputs may be assembly source or assembled object images (the
 * "SMTP" binary format); images carry no source positions, so
 * their diagnostics are located by pc only.
 *
 * Exit status: 0 clean (or warnings without --werror), 1 when any
 * input has diagnostics at error severity, 2 on usage errors or
 * unreadable/unassemblable input.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "base/strutil.hh"

using namespace smtsim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json|--sarif] [--werror] "
                 "[--queue-depth N] [--slots N] "
                 "program.s [more.s ...]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_json = false;
    bool want_sarif = false;
    bool werror = false;
    analysis::LintOptions opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            want_json = true;
        } else if (arg == "--sarif") {
            want_sarif = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--queue-depth") {
            if (i + 1 >= argc)
                usage(argv[0]);
            long long v = 0;
            if (!parseInt(argv[++i], &v) || v < 1) {
                std::fprintf(stderr,
                             "%s: --queue-depth needs a positive "
                             "integer, got \"%s\"\n",
                             argv[0], argv[i]);
                return 2;
            }
            opts.queue_depth = static_cast<int>(v);
        } else if (arg == "--slots") {
            if (i + 1 >= argc)
                usage(argv[0]);
            long long v = 0;
            if (!parseInt(argv[++i], &v) || v < 1) {
                std::fprintf(stderr,
                             "%s: --slots needs a positive "
                             "integer, got \"%s\"\n",
                             argv[0], argv[i]);
                return 2;
            }
            opts.slots = static_cast<int>(v);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty() || (want_json && want_sarif))
        usage(argv[0]);

    bool any_error = false;
    bool any_warning = false;
    for (const std::string &path : paths) {
        Program prog;
        try {
            std::ifstream probe(path, std::ios::binary);
            char magic[4] = {};
            probe.read(magic, 4);
            if (probe && magic[0] == 'S' && magic[1] == 'T' &&
                magic[2] == 'M' && magic[3] == 'P') {
                std::ifstream in(path, std::ios::binary);
                prog = Program::load(in);
            } else {
                std::ifstream in(path);
                if (!in) {
                    std::fprintf(stderr, "cannot open %s\n",
                                 path.c_str());
                    return 2;
                }
                std::ostringstream oss;
                oss << in.rdbuf();
                prog = assemble(oss.str());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         e.what());
            return 2;
        }

        const analysis::LintReport report =
            analysis::lint(prog, opts);
        if (want_json) {
            Json j = analysis::toJson(report);
            j.set("file", path);
            std::cout << j.dump(2) << '\n';
        } else if (want_sarif) {
            std::cout << analysis::toSarif(report, path).dump(2)
                      << '\n';
        } else {
            std::cout << analysis::formatText(report, path);
        }
        any_error = any_error || report.hasErrors();
        any_warning = any_warning || report.warningCount() > 0;
    }

    if (!want_json && !want_sarif && !any_error && !any_warning)
        std::fprintf(stderr, "%zu file(s) clean\n", paths.size());
    return any_error || (werror && any_warning) ? 1 : 0;
}
