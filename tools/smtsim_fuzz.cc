/**
 * @file
 * smtsim-fuzz: differential fuzzer driver.
 *
 *     smtsim-fuzz [options]
 *     smtsim-fuzz --replay FILE-OR-DIR
 *
 * Options:
 *     --runs N       programs to generate and check (default 100)
 *     --seed S       top-level seed; per-run seeds derive from it
 *     --shrink       minimize any diverging program before reporting
 *     --corpus DIR   write shrunken repro files into DIR
 *     --replay PATH  replay repro file(s) instead of fuzzing; fails
 *                    if any repro diverges again
 *     --lint         run the static verifier over every generated
 *                    program before executing it; any diagnostic is
 *                    a generator (or verifier) bug and fails the
 *                    run. Applies to freshly generated programs
 *                    only -- shrink candidates and replayed repros
 *                    are minimized and routinely drop init code.
 *     --lint-oracle N  run the lint soundness cell instead of the
 *                    differential grid: N freshly generated
 *                    programs must lint clean and finish a bounded
 *                    run, and N programs with injected concurrency
 *                    bugs (wait-for cycles, rate-skewed rings,
 *                    dead spin waits) must be flagged with the
 *                    class's diagnostic and hang. --corpus receives
 *                    mismatch repros; --seed varies the programs.
 *     --emit         print every generated program (debugging aid)
 *     --quiet        suppress per-divergence detail
 *
 * Output is deterministic: the same --runs/--seed produce the same
 * programs byte for byte, and the trailing "corpus hash" line
 * fingerprints every rendered program, so two runs can be compared
 * with a plain diff. Exit status: 0 clean, 1 any divergence (or any
 * replayed repro diverging), 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "base/hash.hh"
#include "base/random.hh"
#include "base/strutil.hh"
#include "fuzz/generate.hh"
#include "fuzz/lintoracle.hh"
#include "fuzz/oracle.hh"
#include "fuzz/repro.hh"
#include "fuzz/shrink.hh"

using namespace smtsim;
using namespace smtsim::fuzz;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--runs N] [--seed S] [--shrink] "
                 "[--lint] [--lint-oracle N] [--corpus DIR] "
                 "[--replay PATH] [--emit] [--quiet]\n",
                 argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

int
replay(const std::string &path, bool quiet)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    if (fs::is_directory(path)) {
        for (const auto &entry : fs::directory_iterator(path)) {
            if (entry.path().extension() == ".s")
                files.push_back(entry.path().string());
        }
        std::sort(files.begin(), files.end());
    } else {
        files.push_back(path);
    }
    if (files.empty()) {
        std::fprintf(stderr, "replay: no .s files under %s\n",
                     path.c_str());
        return 2;
    }

    int diverging = 0;
    for (const std::string &file : files) {
        try {
            const Repro repro = parseRepro(readFile(file));
            const std::string diff = replayRepro(repro);
            if (diff.empty()) {
                std::printf("replay %s: ok\n", file.c_str());
            } else {
                ++diverging;
                std::printf("replay %s: DIVERGES\n", file.c_str());
                if (!quiet) {
                    std::printf("  ref: %s\n",
                                repro.ref.name().c_str());
                    std::printf("  cfg: %s\n",
                                repro.cfg.name().c_str());
                    std::printf("  %s\n", diff.c_str());
                }
            }
        } catch (const std::exception &e) {
            ++diverging;
            std::printf("replay %s: ERROR: %s\n", file.c_str(),
                        e.what());
        }
    }
    std::printf("replay: %zu repro(s), %d diverging\n",
                files.size(), diverging);
    return diverging ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    long long runs = 100;
    long long lint_oracle_runs = 0;
    unsigned long long seed = 1;
    bool do_shrink = false;
    bool do_lint = false;
    bool emit = false;
    bool quiet = false;
    std::string corpus_dir;
    std::string replay_path;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs") {
            if (!parseInt(need_value(i), &runs) || runs < 1)
                usage(argv[0]);
        } else if (arg == "--seed") {
            if (!parseUint(need_value(i), &seed))
                usage(argv[0]);
        } else if (arg == "--shrink") {
            do_shrink = true;
        } else if (arg == "--lint") {
            do_lint = true;
        } else if (arg == "--lint-oracle") {
            if (!parseInt(need_value(i), &lint_oracle_runs) ||
                lint_oracle_runs < 1)
                usage(argv[0]);
        } else if (arg == "--corpus") {
            corpus_dir = need_value(i);
        } else if (arg == "--replay") {
            replay_path = need_value(i);
        } else if (arg == "--emit") {
            emit = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0]);
        }
    }

    try {
        if (!replay_path.empty())
            return replay(replay_path, quiet);

        if (lint_oracle_runs > 0) {
            LintOracleOptions lo;
            lo.runs = lint_oracle_runs;
            lo.seed = seed;
            lo.repro_dir = corpus_dir;
            lo.quiet = quiet;
            const LintOracleStats stats = runLintOracle(lo);
            std::printf(
                "lint-oracle: %lld clean + %lld injected runs, "
                "%lld false positive(s), %lld clean hang(s), "
                "%lld missed bug(s), %lld phantom bug(s)\n",
                stats.clean_runs, stats.injected_runs,
                stats.false_positives, stats.clean_hangs,
                stats.missed_bugs, stats.phantom_bugs);
            return stats.ok() ? 0 : 1;
        }

        if (!corpus_dir.empty())
            std::filesystem::create_directories(corpus_dir);

        Rng top(seed ? seed : 1);
        Fnv1a corpus_hash;
        int divergences = 0;
        for (long long run = 0; run < runs; ++run) {
            GenOptions opts;
            opts.seed = top.next();
            const GenProgram prog = generate(opts);
            const std::string text = prog.render();
            corpus_hash.add(text);
            if (emit) {
                std::printf("# ---- run %lld seed %llu ----\n", run,
                            (unsigned long long)prog.seed);
                std::fputs(text.c_str(), stdout);
            }

            Program image;
            std::optional<Divergence> div;
            try {
                image = assemble(text);
                if (do_lint) {
                    // Lint-before-execute: the generator promises
                    // structurally clean programs, so any
                    // diagnostic at all means the generator (or
                    // the verifier) regressed.
                    const analysis::LintReport lr =
                        analysis::lint(image);
                    if (!lr.diags.empty()) {
                        ++divergences;
                        std::printf(
                            "run %lld seed %llu: LINT\n%s", run,
                            (unsigned long long)prog.seed,
                            analysis::formatText(lr, "  <gen>")
                                .c_str());
                        continue;
                    }
                }
                div = checkProgram(image, prog.features);
            } catch (const std::exception &e) {
                // A generated program must always assemble and run:
                // anything else is a generator bug, reported like a
                // divergence so the nightly job fails loudly.
                ++divergences;
                std::printf("run %lld seed %llu: ERROR: %s\n", run,
                            (unsigned long long)prog.seed, e.what());
                continue;
            }
            if (!div)
                continue;

            ++divergences;
            std::printf("run %lld seed %llu: DIVERGENCE\n", run,
                        (unsigned long long)prog.seed);
            if (!quiet) {
                std::printf("  ref: %s\n", div->ref.name().c_str());
                std::printf("  cfg: %s\n", div->cfg.name().c_str());
                std::printf("  %s\n", div->detail.c_str());
            }

            GenProgram final_prog = prog;
            Divergence final_div = *div;
            if (do_shrink) {
                const RunConfig ref = div->ref;
                const RunConfig cfg = div->cfg;
                const DivClass klass =
                    classifyDivergence(div->detail);
                // Tight budget: a deadlocked/livelocked candidate
                // must not burn the full default cycle ceiling, and
                // the class check stops the shrinker from slipping
                // onto a different failure than the one found.
                OracleBudget shrink_budget;
                shrink_budget.interp_max_steps = 2'000'000;
                shrink_budget.max_cycles = 2'000'000;
                ShrinkStats sstats;
                final_prog = shrink(
                    prog,
                    [&](const GenProgram &cand) {
                        const Program p = assemble(cand.render());
                        const auto d =
                            checkPair(p, cand.features, ref, cfg,
                                      shrink_budget);
                        return d && classifyDivergence(d->detail) ==
                                        klass;
                    },
                    &sstats);
                const auto re =
                    checkPair(assemble(final_prog.render()),
                              final_prog.features, ref, cfg);
                if (re)
                    final_div = *re;
                if (!quiet) {
                    std::printf(
                        "  shrunk %d -> %d instructions "
                        "(%d candidates, %d accepted)\n",
                        prog.countInsns(), final_prog.countInsns(),
                        sstats.attempts, sstats.accepted);
                }
            }

            if (!corpus_dir.empty()) {
                const std::string name =
                    reproFileName(final_prog, final_div);
                const std::filesystem::path out =
                    std::filesystem::path(corpus_dir) / name;
                std::ofstream os(out);
                os << formatRepro(final_prog, final_div);
                std::printf("  repro: %s\n", out.string().c_str());
            } else if (!quiet) {
                std::fputs(formatRepro(final_prog, final_div).c_str(),
                           stdout);
            }
        }

        std::printf("fuzz: %lld runs, %d divergence(s), corpus "
                    "hash %s\n",
                    runs, divergences,
                    hashToHex(corpus_hash.digest()).c_str());
        return divergences ? 1 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
