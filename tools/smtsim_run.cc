/**
 * @file
 * smtsim-run: assemble a .s file and execute it on one of the
 * engines.
 *
 *     smtsim-run [options] program.s
 *
 * Options:
 *     --engine core|baseline|interp|fast   (default core)
 *     --slots N          thread slots (core; default 4)
 *     --frames N         context frames (core; default = slots)
 *     --lsu N            load/store units (default 1)
 *     --width D          issue width per slot (default 1)
 *     --no-standby       disable standby stations
 *     --no-fast-forward  naive every-cycle loops (oracle; same
 *                        cycle counts, slower — docs/PERF.md)
 *     --explicit         explicit rotation mode
 *     --interval N       rotation interval (default 8)
 *     --private-icache   per-slot fetch units
 *     --dcache BYTES     finite data cache (direct-mapped)
 *     --icache BYTES     finite instruction cache
 *     --threads N        interp/fast logical processors
 *     --max-cycles N     simulation budget
 *     --cores N          many-core machine mode: N copies of the
 *                        configured core coupled through a banked
 *                        shared L2 (docs/MANYCORE.md; core engine)
 *     --host-threads M   simulate cores on M host threads
 *                        (0 = sequential reference schedule;
 *                        results are bit-identical either way)
 *     --remote-data LAT  mark the program's data segment as remote
 *                        memory (stub latency LAT on a lone core;
 *                        the machine times it via the interconnect)
 *     --l2-banks N       machine: shared-L2 banks (default 4)
 *     --bank-interleave B  machine: bank stripe bytes (default 64)
 *     --mshrs N          machine: MSHR slots per bank (default 4)
 *     --l2-cycles N      machine: bank service cycles (default 20)
 *     --bank-conflict N  machine: busy-bank penalty (default 6)
 *     --hop-latency N    machine: ring hop cycles (default 2)
 *     --quantum N        machine: barrier quantum (0 = auto)
 *     --dump-word ADDR   print a 32-bit word of memory after the run
 *     --dump-double ADDR print a double after the run
 *     --lint             run the static verifier first, at the
 *                        run's own slot count and queue depth; any
 *                        error-severity diagnostic aborts the run
 *                        with exit 1 (docs/ANALYSIS.md)
 *     --stats            print the detailed stall counters (core)
 *     --trace            stream per-cycle pipeline events as text
 *                        to stderr (--pipe-trace is an alias;
 *                        core and baseline engines)
 *     --trace-out FILE   record the binary event stream for
 *                        smtsim-scope (docs/OBSERVABILITY.md)
 *     --ckpt-out PATH    checkpoint file (with --ckpt-every the
 *                        cycle number is appended: PATH.N)
 *     --ckpt-every K     checkpoint every K cycles (core)
 *     --ckpt-at N        checkpoint once, at cycle N (core)
 *     --restore PATH     resume from a checkpoint before running
 *     --json             emit the run statistics as one JSON object
 *
 * Numeric options are parsed strictly: a non-numeric or
 * out-of-range value ("--slots banana", "--width -2") is a fatal
 * usage error, never a silent zero.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "base/strutil.hh"
#include "fastpath/engine.hh"
#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "interp/interpreter.hh"
#include "machine/manycore.hh"
#include "machine/manycore_json.hh"
#include "machine/run_stats_json.hh"
#include "mem/memory.hh"
#include "obs/sinks.hh"

using namespace smtsim;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] program.s   (see file "
                 "header for options)\n",
                 argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

void
printStats(const RunStats &s)
{
    std::printf("cycles        %llu\n",
                (unsigned long long)s.cycles);
    std::printf("instructions  %llu\n",
                (unsigned long long)s.instructions);
    if (s.cycles > 0) {
        std::printf("ipc           %.3f\n",
                    static_cast<double>(s.instructions) /
                        static_cast<double>(s.cycles));
    }
    std::printf("branches      %llu\n",
                (unsigned long long)s.branches);
    std::printf("loads/stores  %llu/%llu\n",
                (unsigned long long)s.loads,
                (unsigned long long)s.stores);
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None || s.fu_grants[cls] == 0)
            continue;
        std::printf("%-13s %llu grants", fuClassName(fc),
                    (unsigned long long)s.fu_grants[cls]);
        for (size_t u = 0; u < s.unit_busy[cls].size(); ++u) {
            std::printf("  unit%zu %.1f%%", u,
                        s.unitUtilization(fc, (int)u));
        }
        std::printf("\n");
    }
    if (s.context_switches)
        std::printf("ctx switches  %llu\n",
                    (unsigned long long)s.context_switches);
    if (s.dcache_hits + s.dcache_misses) {
        std::printf("dcache        %llu hits, %llu misses\n",
                    (unsigned long long)s.dcache_hits,
                    (unsigned long long)s.dcache_misses);
    }
    if (s.icache_hits + s.icache_misses) {
        std::printf("icache        %llu hits, %llu misses\n",
                    (unsigned long long)s.icache_hits,
                    (unsigned long long)s.icache_misses);
    }
    std::printf("finished      %s\n", s.finished ? "yes" : "NO");
}

void
printMachineStats(const MachineStats &s)
{
    std::printf("cores         %zu\n", s.cores.size());
    std::printf("quanta        %llu\n",
                (unsigned long long)s.quanta);
    for (std::size_t i = 0; i < s.cores.size(); ++i) {
        std::printf("core%-2zu        %llu cycles, %llu insns%s\n",
                    i, (unsigned long long)s.cores[i].cycles,
                    (unsigned long long)s.cores[i].instructions,
                    s.cores[i].finished ? "" : " (unfinished)");
    }
    if (s.noc.requests) {
        std::printf("noc           %llu requests, %llu conflicts, "
                    "avg latency %.1f\n",
                    (unsigned long long)s.noc.requests,
                    (unsigned long long)s.noc.conflicts,
                    static_cast<double>(s.noc.total_latency) /
                        static_cast<double>(s.noc.requests));
    }
    std::printf("--- aggregate ---\n");
    printStats(s.aggregate());
}

/** Fan one event stream out to several sinks (--trace plus
 *  --trace-out in the same run). */
class TeeSink : public obs::EventSink
{
  public:
    void add(obs::EventSink *sink) { sinks_.push_back(sink); }

    void
    event(const obs::Event &ev) override
    {
        for (obs::EventSink *sink : sinks_)
            sink->event(ev);
    }

    void
    flush() override
    {
        for (obs::EventSink *sink : sinks_)
            sink->flush();
    }

  private:
    std::vector<obs::EventSink *> sinks_;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string engine = "core";
    std::string path;
    CoreConfig cfg;
    int cores = 0;              // > 0 selects many-core machine mode
    int host_threads = 0;
    InterconnectConfig noc;
    unsigned long long quantum = 0;
    long long remote_data_latency = -1;
    int threads = 4;
    bool want_detail = false;
    bool want_trace = false;
    bool want_json = false;
    bool want_lint = false;
    std::string trace_out, ckpt_out, restore_path;
    unsigned long long ckpt_every = 0;
    long long ckpt_at = -1;
    std::vector<Addr> dump_words, dump_doubles;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    // Strict numeric option parsing: "--slots banana" or a
    // negative count is a diagnosed error, not a silent 0.
    auto int_value = [&](const std::string &opt, int &i,
                         long long min_value) -> long long {
        const char *text = need_value(i);
        long long v = 0;
        if (!parseInt(text, &v)) {
            std::fprintf(stderr,
                         "%s: %s needs an integer, got \"%s\"\n",
                         argv[0], opt.c_str(), text);
            std::exit(2);
        }
        if (v < min_value) {
            std::fprintf(stderr,
                         "%s: %s must be >= %lld, got %lld\n",
                         argv[0], opt.c_str(), min_value, v);
            std::exit(2);
        }
        return v;
    };
    auto uint_value = [&](const std::string &opt,
                          int &i) -> unsigned long long {
        const char *text = need_value(i);
        unsigned long long v = 0;
        if (!parseUint(text, &v)) {
            std::fprintf(stderr,
                         "%s: %s needs a non-negative integer, "
                         "got \"%s\"\n",
                         argv[0], opt.c_str(), text);
            std::exit(2);
        }
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine") {
            engine = need_value(i);
        } else if (arg == "--slots") {
            cfg.num_slots = static_cast<int>(int_value(arg, i, 1));
            threads = cfg.num_slots;
        } else if (arg == "--frames") {
            cfg.num_frames = static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--lsu") {
            cfg.fus.load_store =
                static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--width") {
            cfg.width = static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--no-standby") {
            cfg.standby_enabled = false;
        } else if (arg == "--no-fast-forward") {
            cfg.fast_forward = false;
        } else if (arg == "--explicit") {
            cfg.rotation_mode = RotationMode::Explicit;
        } else if (arg == "--interval") {
            cfg.rotation_interval =
                static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--private-icache") {
            cfg.private_icache = true;
        } else if (arg == "--dcache") {
            cfg.dcache.size_bytes =
                static_cast<Addr>(uint_value(arg, i));
        } else if (arg == "--icache") {
            cfg.icache.size_bytes =
                static_cast<Addr>(uint_value(arg, i));
        } else if (arg == "--threads") {
            threads = static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--cores") {
            cores = static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--host-threads") {
            host_threads = static_cast<int>(int_value(arg, i, 0));
        } else if (arg == "--remote-data") {
            remote_data_latency =
                static_cast<long long>(int_value(arg, i, 1));
        } else if (arg == "--l2-banks") {
            noc.l2_banks = static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--bank-interleave") {
            noc.bank_interleave =
                static_cast<Addr>(int_value(arg, i, 4));
        } else if (arg == "--mshrs") {
            noc.mshrs_per_bank =
                static_cast<int>(int_value(arg, i, 1));
        } else if (arg == "--l2-cycles") {
            noc.l2_access_cycles = uint_value(arg, i);
        } else if (arg == "--bank-conflict") {
            noc.bank_conflict_penalty = uint_value(arg, i);
        } else if (arg == "--hop-latency") {
            noc.hop_latency = uint_value(arg, i);
        } else if (arg == "--quantum") {
            quantum = uint_value(arg, i);
        } else if (arg == "--max-cycles") {
            cfg.max_cycles = uint_value(arg, i);
        } else if (arg == "--dump-word") {
            dump_words.push_back(
                static_cast<Addr>(uint_value(arg, i)));
        } else if (arg == "--dump-double") {
            dump_doubles.push_back(
                static_cast<Addr>(uint_value(arg, i)));
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg == "--lint") {
            want_lint = true;
        } else if (arg == "--stats") {
            want_detail = true;
        } else if (arg == "--trace" || arg == "--pipe-trace") {
            want_trace = true;
        } else if (arg == "--trace-out") {
            trace_out = need_value(i);
        } else if (arg == "--ckpt-out") {
            ckpt_out = need_value(i);
        } else if (arg == "--ckpt-every") {
            ckpt_every = uint_value(arg, i);
        } else if (arg == "--ckpt-at") {
            ckpt_at = static_cast<long long>(uint_value(arg, i));
        } else if (arg == "--restore") {
            restore_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else {
            path = arg;
        }
    }
    if (path.empty())
        usage(argv[0]);
    const bool want_ckpt = ckpt_every > 0 || ckpt_at >= 0;
    if (want_ckpt && ckpt_out.empty()) {
        std::fprintf(stderr,
                     "%s: --ckpt-every/--ckpt-at need --ckpt-out\n",
                     argv[0]);
        return 2;
    }
    if (ckpt_every > 0 && ckpt_at >= 0) {
        std::fprintf(stderr,
                     "%s: --ckpt-every and --ckpt-at are mutually "
                     "exclusive\n",
                     argv[0]);
        return 2;
    }
    if ((want_ckpt || !ckpt_out.empty() || !restore_path.empty()) &&
        engine != "core") {
        std::fprintf(stderr,
                     "%s: checkpoints need --engine core\n",
                     argv[0]);
        return 2;
    }
    if (cores > 0 && engine != "core") {
        std::fprintf(stderr, "%s: --cores needs --engine core\n",
                     argv[0]);
        return 2;
    }
    if (cores > 0 && (want_trace || !trace_out.empty())) {
        std::fprintf(stderr,
                     "%s: event traces are per-core; not available "
                     "with --cores\n",
                     argv[0]);
        return 2;
    }
    if ((want_trace || !trace_out.empty()) &&
        (engine == "interp" || engine == "fast")) {
        std::fprintf(stderr,
                     "%s: functional engines have no event stream\n",
                     argv[0]);
        return 2;
    }

    try {
        // A file starting with the object-format magic is loaded
        // directly; anything else is assembled as source.
        Program prog;
        {
            std::ifstream probe(path, std::ios::binary);
            char magic[4] = {};
            probe.read(magic, 4);
            if (probe && magic[0] == 'S' && magic[1] == 'T' &&
                magic[2] == 'M' && magic[3] == 'P') {
                std::ifstream in(path, std::ios::binary);
                prog = Program::load(in);
            } else {
                prog = assemble(readFile(path));
            }
        }
        if (want_lint) {
            // Verify against the configuration about to run, not
            // the defaults: the concurrency passes project the
            // program per slot, so the verdict depends on the slot
            // count and FIFO depth.
            analysis::LintOptions lopts;
            lopts.queue_depth = cfg.queue_reg_depth;
            lopts.slots = engine == "baseline" ? 1
                          : engine == "core"   ? cfg.num_slots
                                               : threads;
            const analysis::LintReport lr =
                analysis::lint(prog, lopts);
            std::cerr << analysis::formatText(lr, path);
            if (lr.hasErrors()) {
                std::fprintf(stderr,
                             "%s: %d lint error(s); not running\n",
                             path.c_str(), lr.errorCount());
                return 1;
            }
        }

        MainMemory mem;
        prog.loadInto(mem);
        if (remote_data_latency >= 0) {
            cfg.remote.base = prog.data_base;
            cfg.remote.size =
                static_cast<Addr>(prog.data.size());
            cfg.remote.latency =
                static_cast<Cycle>(remote_data_latency);
        }
        // Post-run memory dumps read core 0's private memory in
        // machine mode (every core's is identical under SPMD).
        MainMemory *dump_mem = &mem;
        std::unique_ptr<ManyCoreMachine> machine;

        // --json replaces the human-readable report with one
        // machine-readable object on stdout.
        auto report = [&](const RunStats &s) {
            if (want_json)
                std::cout << statsToJson(s).dump(2) << '\n';
            else
                printStats(s);
        };

        // Sink plumbing shared by both cycle-accurate engines:
        // --trace gets a text sink on stderr, --trace-out a binary
        // stream, both at once a tee.
        std::ofstream trace_file;
        std::unique_ptr<obs::EventSink> text_sink, bin_sink;
        TeeSink tee;
        obs::EventSink *sink = nullptr;
        auto setup_sinks = [&](int num_slots) {
            if (want_trace) {
                text_sink =
                    std::make_unique<obs::TextSink>(std::cerr);
                tee.add(text_sink.get());
            }
            if (!trace_out.empty()) {
                trace_file.open(trace_out, std::ios::binary);
                if (!trace_file) {
                    std::fprintf(stderr, "cannot open %s\n",
                                 trace_out.c_str());
                    std::exit(1);
                }
                bin_sink = std::make_unique<obs::BinarySink>(
                    trace_file, obs::TraceMeta{num_slots});
                tee.add(bin_sink.get());
            }
            if (want_trace && !trace_out.empty())
                sink = &tee;
            else if (want_trace)
                sink = text_sink.get();
            else if (!trace_out.empty())
                sink = bin_sink.get();
        };

        if (engine == "core" && cores > 0) {
            MachineConfig mcfg;
            mcfg.num_cores = cores;
            mcfg.core = cfg;
            mcfg.noc = noc;
            mcfg.quantum = quantum;
            machine = std::make_unique<ManyCoreMachine>(prog, mcfg);
            dump_mem = &machine->memory(0);
            if (!restore_path.empty()) {
                std::ifstream in(restore_path, std::ios::binary);
                if (!in) {
                    std::fprintf(stderr, "cannot open %s\n",
                                 restore_path.c_str());
                    return 1;
                }
                machine->restoreCheckpoint(in);
            }
            MachineStats s;
            if (want_ckpt) {
                // Same segmenting discipline as the single-core
                // path; machine runUntil() splits bit-identically
                // and always stops on a quantum barrier.
                long long pending_at = ckpt_at;
                for (;;) {
                    Cycle stop = cfg.max_cycles;
                    if (pending_at >= 0 &&
                        machine->now() <=
                            static_cast<Cycle>(pending_at))
                        stop = static_cast<Cycle>(pending_at);
                    else if (ckpt_every > 0)
                        stop = (machine->now() / ckpt_every + 1) *
                               ckpt_every;
                    s = machine->runUntil(stop, host_threads);
                    if (machine->finished() ||
                        machine->now() >= cfg.max_cycles)
                        break;
                    std::string out = ckpt_out;
                    if (ckpt_every > 0)
                        out += "." + std::to_string(machine->now());
                    std::ofstream os(out, std::ios::binary);
                    if (!os) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     out.c_str());
                        return 1;
                    }
                    machine->saveCheckpoint(os);
                    pending_at = -1;
                }
            } else {
                s = machine->run(host_threads);
            }
            if (want_json)
                std::cout << machineStatsToJson(s).dump(2) << '\n';
            else
                printMachineStats(s);
        } else if (engine == "core") {
            MultithreadedProcessor cpu(prog, mem, cfg);
            setup_sinks(cfg.num_slots);
            if (sink)
                cpu.setEventSink(sink);
            if (!restore_path.empty()) {
                std::ifstream in(restore_path, std::ios::binary);
                if (!in) {
                    std::fprintf(stderr, "cannot open %s\n",
                                 restore_path.c_str());
                    return 1;
                }
                cpu.restoreCheckpoint(in);
            }
            RunStats s;
            if (want_ckpt) {
                // Segment the run at the checkpoint cycles;
                // runUntil() makes the split bit-identical to one
                // run() call.
                long long pending_at = ckpt_at;
                for (;;) {
                    Cycle stop = cfg.max_cycles;
                    if (pending_at >= 0 &&
                        cpu.now() <= static_cast<Cycle>(pending_at))
                        stop = static_cast<Cycle>(pending_at);
                    else if (ckpt_every > 0)
                        stop = (cpu.now() / ckpt_every + 1) *
                               ckpt_every;
                    s = cpu.runUntil(stop);
                    if (cpu.finished() ||
                        cpu.now() >= cfg.max_cycles)
                        break;
                    std::string out = ckpt_out;
                    if (ckpt_every > 0)
                        out += "." + std::to_string(cpu.now());
                    std::ofstream os(out, std::ios::binary);
                    if (!os) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     out.c_str());
                        return 1;
                    }
                    cpu.saveCheckpoint(os);
                    pending_at = -1;
                }
            } else {
                s = cpu.run();
            }
            report(s);
            if (want_detail && !want_json) {
                std::printf("--- detail ---\n");
                cpu.detail().dump(std::cout);
            }
        } else if (engine == "baseline") {
            BaselineConfig bcfg;
            bcfg.width = cfg.width;
            bcfg.fus = cfg.fus;
            bcfg.max_cycles = cfg.max_cycles;
            bcfg.fast_forward = cfg.fast_forward;
            BaselineProcessor cpu(prog, mem, bcfg);
            setup_sinks(1);
            if (sink)
                cpu.setEventSink(sink);
            report(cpu.run());
        } else if (engine == "interp" || engine == "fast") {
            InterpConfig icfg;
            icfg.num_threads = threads;
            InterpResult r;
            if (engine == "fast") {
                fastpath::FastEngine fast(prog, mem, icfg);
                r = fast.run();
            } else {
                Interpreter interp(prog, mem, icfg);
                r = interp.run();
            }
            if (want_json) {
                RunStats s;
                s.instructions = r.steps;
                s.finished = r.completed;
                std::cout << statsToJson(s).dump(2) << '\n';
            } else {
                std::printf("instructions  %llu\n",
                            (unsigned long long)r.steps);
                std::printf("finished      %s\n",
                            r.completed ? "yes" : "NO");
            }
        } else {
            usage(argv[0]);
        }

        for (Addr a : dump_words)
            std::printf("[0x%08x] = %u\n", a, dump_mem->read32(a));
        for (Addr a : dump_doubles)
            std::printf("[0x%08x] = %g\n", a,
                        dump_mem->readDouble(a));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
